"""Protocol-conformance validation over recorded traces."""

from repro.validation.checker import (
    RULE_NAMES,
    ConformanceReport,
    ConformanceStream,
    ProtocolChecker,
    Violation,
)
from repro.validation.replay import (
    FAULT_PROFILES,
    SCENARIOS,
    CheckScenario,
    ReplayOutcome,
    replay_config,
    run_matrix,
)

__all__ = [
    "RULE_NAMES",
    "ConformanceReport",
    "ConformanceStream",
    "ProtocolChecker",
    "Violation",
    "FAULT_PROFILES",
    "SCENARIOS",
    "CheckScenario",
    "ReplayOutcome",
    "replay_config",
    "run_matrix",
]
