"""Conformance replay: run registered scenarios traced, then check.

The replay layer turns the streaming checker into an end-to-end
regression net: a registry of small named scenarios (both protocols,
both access modes, interferers, random placement, a cheater) is run
with a :class:`~repro.sim.trace.TraceLog` attached, and the complete
trace is replayed through :class:`~repro.validation.ProtocolChecker`.
Every registered scenario must replay with **zero** violations — the
rules encode 802.11 sequencing invariants that hold for honest *and*
policy-cheating senders alike (cheating shrinks the effective
countdown the MAC itself reports, it never breaks SIFS/NAV/EIFS
sequencing), and for faulted runs (losses, jamming, crashes, drift)
too.

``python -m repro check`` is the CLI face (see :mod:`repro.__main__`);
CI sweeps the scenario x fault-profile matrix on every push.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.scenarios import (
    PROTOCOL_80211,
    PROTOCOL_CORRECT,
    ScenarioConfig,
    build_scenario,
)
from repro.faults import parse_profile
from repro.net.topology import circle_topology, random_topology
from repro.sim.trace import TraceLog
from repro.validation.checker import ConformanceReport, ProtocolChecker

#: Violations carried per outcome (full counts survive in ``by_rule``).
MAX_CARRIED_VIOLATIONS = 20


@dataclass(frozen=True)
class CheckScenario:
    """One registered replay scenario.

    ``build`` maps (duration_us, seed) to a runnable config;
    ``honest`` records whether every sender conforms (a cheater
    scenario must *still* replay clean — see the module docstring).
    """

    name: str
    description: str
    build: Callable[[int, int], ScenarioConfig]
    honest: bool = True


def _build_dcf_circle(duration_us: int, seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        topology=circle_topology(4), protocol=PROTOCOL_80211,
        duration_us=duration_us, seed=seed,
    )


def _build_dcf_basic(duration_us: int, seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        topology=circle_topology(3), protocol=PROTOCOL_80211,
        duration_us=duration_us, seed=seed, use_rts_cts=False,
    )


def _build_correct_circle(duration_us: int, seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        topology=circle_topology(8), protocol=PROTOCOL_CORRECT,
        duration_us=duration_us, seed=seed,
    )


def _build_correct_small(duration_us: int, seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        topology=circle_topology(2), protocol=PROTOCOL_CORRECT,
        duration_us=duration_us, seed=seed,
    )


def _build_correct_basic(duration_us: int, seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        topology=circle_topology(4), protocol=PROTOCOL_CORRECT,
        duration_us=duration_us, seed=seed, use_rts_cts=False,
    )


def _build_correct_interferers(duration_us: int, seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        topology=circle_topology(4, with_interferers=True),
        protocol=PROTOCOL_CORRECT, duration_us=duration_us, seed=seed,
    )


def _build_correct_random(duration_us: int, seed: int) -> ScenarioConfig:
    topo = random_topology(random.Random(seed), n_nodes=10, n_misbehaving=0)
    return ScenarioConfig(
        topology=topo, protocol=PROTOCOL_CORRECT,
        duration_us=duration_us, seed=seed,
    )


def _build_correct_cheater(duration_us: int, seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        topology=circle_topology(4, misbehaving=(3,), pm_percent=50.0),
        protocol=PROTOCOL_CORRECT, duration_us=duration_us, seed=seed,
    )


def _build_dcf_cheater(duration_us: int, seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        topology=circle_topology(4, misbehaving=(3,), pm_percent=80.0),
        protocol=PROTOCOL_80211, duration_us=duration_us, seed=seed,
    )


#: Every named replay scenario, in report order.
SCENARIOS: Dict[str, CheckScenario] = {
    s.name: s for s in (
        CheckScenario(
            "dcf-circle", "802.11 baseline, 4 senders, RTS/CTS",
            _build_dcf_circle,
        ),
        CheckScenario(
            "dcf-basic", "802.11 baseline, 3 senders, basic access",
            _build_dcf_basic,
        ),
        CheckScenario(
            "dcf-cheat80", "802.11 with one PM=80% cheater",
            _build_dcf_cheater, honest=False,
        ),
        CheckScenario(
            "correct-small", "CORRECT protocol, 2 senders",
            _build_correct_small,
        ),
        CheckScenario(
            "correct-circle", "CORRECT protocol, fig-3 circle, 8 senders",
            _build_correct_circle,
        ),
        CheckScenario(
            "correct-basic", "CORRECT protocol, 4 senders, basic access",
            _build_correct_basic,
        ),
        CheckScenario(
            "correct-interferers", "CORRECT, 4 senders + TWO-FLOW interferers",
            _build_correct_interferers,
        ),
        CheckScenario(
            "correct-random", "CORRECT, 10-node random topology",
            _build_correct_random,
        ),
        CheckScenario(
            "correct-cheat50", "CORRECT with one PM=50% cheater",
            _build_correct_cheater, honest=False,
        ),
    )
}

#: Fault profiles the CI matrix crosses with the scenarios.  Node ids
#: 1 and 2 are senders in every registered topology; crash/restart
#: times sit inside the sub-second quick horizon.
FAULT_PROFILES: Dict[str, Optional[str]] = {
    "none": None,
    "ack-loss": "ack-loss=0.25@3",
    "cts-loss": "cts-loss=0.2",
    "corrupt": "corrupt=0.15",
    "jam": "jam=10:3000",
    "crash": "crash=1@0.1-0.3",
    "drift": "drift=2:30000",
}


@dataclass
class ReplayOutcome:
    """Result of one (scenario, fault profile) replay — picklable."""

    scenario: str
    profile: str
    ok: bool
    transmissions: int = 0
    responses_checked: int = 0
    trace_events: int = 0
    by_rule: Dict[str, int] = field(default_factory=dict)
    #: (rule, time, node, detail) of the first violations, capped.
    violations: List[Tuple[str, int, int, str]] = field(default_factory=list)
    #: Non-None when the run itself crashed instead of finishing.
    error: Optional[str] = None


def replay_config(
    config: ScenarioConfig, checker: Optional[ProtocolChecker] = None
) -> Tuple[ConformanceReport, TraceLog]:
    """Run one scenario with tracing attached and check the trace."""
    trace = TraceLog()
    sim, nodes, _collector = build_scenario(config, trace=trace)
    for node in nodes:
        node.start()
    sim.run(until=config.duration_us)
    if checker is None:
        checker = ProtocolChecker()
    return checker.check(trace), trace


def _replay_task(task: Tuple[str, str, int, int]) -> ReplayOutcome:
    """Worker entry point (module-level so it pickles)."""
    scenario_name, profile_name, duration_us, seed = task
    outcome = ReplayOutcome(scenario=scenario_name, profile=profile_name,
                            ok=False)
    try:
        scenario = SCENARIOS[scenario_name]
        config = scenario.build(duration_us, seed)
        spec = FAULT_PROFILES[profile_name]
        if spec is not None:
            config = replace(config, faults=parse_profile(spec))
        report, trace = replay_config(config)
    except Exception as exc:  # pragma: no cover - surfaced in the table
        outcome.error = f"{type(exc).__name__}: {exc}"
        return outcome
    outcome.ok = report.ok
    outcome.transmissions = report.transmissions
    outcome.responses_checked = report.responses_checked
    outcome.trace_events = len(trace)
    outcome.by_rule = report.by_rule()
    outcome.violations = [
        (v.rule, v.time, v.node, v.detail)
        for v in report.violations[:MAX_CARRIED_VIOLATIONS]
    ]
    return outcome


def run_matrix(
    scenario_names: Sequence[str],
    profile_names: Sequence[str],
    duration_us: int,
    seed: int = 1,
    workers: int = 1,
) -> List[ReplayOutcome]:
    """Replay the scenario x profile matrix; one outcome per cell.

    ``workers > 1`` fans cells out over a process pool (each cell is a
    full simulation); ``workers=1`` runs inline, which is what tests
    want for determinism under coverage tools.
    """
    tasks = [
        (s, p, duration_us, seed)
        for s in scenario_names for p in profile_names
    ]
    if workers <= 1 or len(tasks) <= 1:
        return [_replay_task(t) for t in tasks]
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        return list(pool.map(_replay_task, tasks))
