"""IEEE 802.11 protocol-conformance checking over a trace.

Given a :class:`~repro.sim.trace.TraceLog` recorded by the medium, the
checker verifies sequencing rules that any correct DCF implementation
must obey, and reports violations.  Running a full scenario with
tracing and asserting zero violations is a strong end-to-end test of
the MAC — it validates ordering properties the unit tests cannot see.

Checked rules
-------------
half-duplex
    A node never has two transmissions on the air simultaneously.
cts-follows-rts
    Every CTS from X to Y starts exactly SIFS after X finished
    decoding an RTS from Y.
ack-follows-data
    Every ACK from X to Y starts exactly SIFS after X finished
    decoding a DATA frame from Y.
data-follows-cts
    Every DATA from X to Y starts exactly SIFS after X decoded a CTS
    from Y (first DATA of the exchange; retransmitted exchanges
    restart from RTS).
nav-respected
    A node that *decoded* a frame not addressed to it, carrying a NAV
    duration D, does not start a transmission strictly inside
    ``(decode_time, decode_time + D)``.
min-turnaround
    Consecutive transmissions of one node are separated by at least
    SIFS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.phy.constants import PhyTimings
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class Violation:
    """One conformance violation."""

    rule: str
    time: int
    node: int
    detail: str


@dataclass
class ConformanceReport:
    """Checker output: violations plus what was checked."""

    violations: List[Violation] = field(default_factory=list)
    transmissions: int = 0
    responses_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts


class ProtocolChecker:
    """Replays a medium trace against the DCF sequencing rules."""

    def __init__(self, timings: Optional[PhyTimings] = None):
        self.timings = timings if timings is not None else PhyTimings()

    def check(self, trace: TraceLog) -> ConformanceReport:
        report = ConformanceReport()
        tx_events = [e for e in trace if e.kind == "tx_start"]
        decode_events = [e for e in trace if e.kind == "decode"]
        report.transmissions = len(tx_events)
        self._check_half_duplex(tx_events, report)
        self._check_turnaround(tx_events, report)
        self._check_responses(tx_events, decode_events, report)
        self._check_nav(tx_events, decode_events, report)
        return report

    # ------------------------------------------------------------------
    def _check_half_duplex(self, tx_events, report) -> None:
        last_end: Dict[int, int] = {}
        for event in tx_events:
            end = int(event.data["end"])
            prev = last_end.get(event.node)
            if prev is not None and event.time < prev:
                report.violations.append(Violation(
                    "half-duplex", event.time, event.node,
                    f"tx starts at {event.time} before own tx ends at {prev}",
                ))
            last_end[event.node] = max(end, last_end.get(event.node, 0))

    def _check_turnaround(self, tx_events, report) -> None:
        sifs = self.timings.sifs_us
        last_end: Dict[int, int] = {}
        for event in tx_events:
            prev = last_end.get(event.node)
            if prev is not None and 0 <= event.time - prev < sifs:
                report.violations.append(Violation(
                    "min-turnaround", event.time, event.node,
                    f"gap {event.time - prev} us < SIFS",
                ))
            last_end[event.node] = int(event.data["end"])

    def _check_responses(self, tx_events, decode_events, report) -> None:
        sifs = self.timings.sifs_us
        triggers = {"cts": "rts", "ack": "data", "data": "cts"}
        # Basic access (no RTS/CTS anywhere in the trace): DATA frames
        # legitimately follow backoff instead of a CTS.
        kinds_on_air = {str(e.data["frame_kind"]) for e in tx_events}
        if "rts" not in kinds_on_air and "cts" not in kinds_on_air:
            triggers.pop("data")
        # Index decodes by (listener, frame_kind, time).
        decoded: Dict[Tuple[int, str], List[dict]] = {}
        for event in decode_events:
            key = (event.node, str(event.data["frame_kind"]))
            decoded.setdefault(key, []).append(
                {"time": event.time, "src": event.data["src"],
                 "dst": event.data["dst"]}
            )
        for event in tx_events:
            kind = str(event.data["frame_kind"])
            trigger_kind = triggers.get(kind)
            if trigger_kind is None:
                continue
            peer = event.data["dst"]
            expected_decode_time = event.time - sifs
            candidates = decoded.get((event.node, trigger_kind), [])
            match = any(
                c["time"] == expected_decode_time and c["src"] == peer
                and c["dst"] == event.node
                for c in candidates
            )
            if kind == "data":
                # Only the SIFS-scheduled DATA (right after CTS) is a
                # response; a DATA after backoff would be nonstandard
                # here because this MAC always uses RTS/CTS, so any
                # DATA must follow a CTS.
                pass
            report.responses_checked += 1
            if not match:
                report.violations.append(Violation(
                    f"{kind}-follows-{trigger_kind}", event.time, event.node,
                    f"{kind} to {peer} lacks a {trigger_kind} decoded at "
                    f"t={expected_decode_time}",
                ))

    def _check_nav(self, tx_events, decode_events, report) -> None:
        # For each node, NAV intervals implied by decoded frames not
        # addressed to it.
        nav_intervals: Dict[int, List[Tuple[int, int]]] = {}
        for event in decode_events:
            if event.data["dst"] == event.node:
                continue
            duration = int(event.data.get("duration_us", 0) or 0)
            if duration <= 0:
                continue
            nav_intervals.setdefault(event.node, []).append(
                (event.time, event.time + duration)
            )
        for event in tx_events:
            for start, end in nav_intervals.get(event.node, ()):  # noqa: B020
                if start < event.time < end:
                    report.violations.append(Violation(
                        "nav-respected", event.time, event.node,
                        f"tx inside NAV window ({start}, {end})",
                    ))
                    break
