"""IEEE 802.11 protocol-conformance checking over a trace.

Given a :class:`~repro.sim.trace.TraceLog` recorded by the medium and
the MACs, the checker verifies sequencing rules that any correct DCF
implementation must obey, and reports violations.  Running a full
scenario with tracing and asserting zero violations is a strong
end-to-end test of the MAC — it validates ordering properties the unit
tests cannot see.

The checker is a *streaming* rule engine: :class:`ConformanceStream`
consumes events one at a time in trace order, keeping only bounded
per-node / per-flow state, so a trace can be checked while (or long
after) it is produced without materialising per-rule event lists.
:meth:`ProtocolChecker.check` is the one-shot convenience wrapper.

Checked rules
-------------
half-duplex
    A node never has two transmissions on the air simultaneously.
min-turnaround
    Consecutive transmissions of one node are separated by at least
    SIFS.
cts-follows-rts
    Every CTS from X to Y starts exactly SIFS after X finished
    decoding an RTS from Y.
ack-follows-data
    Every ACK from X to Y starts exactly SIFS after X finished
    decoding a DATA frame from Y.
data-follows-cts
    Every DATA from X to Y on an RTS/CTS flow starts exactly SIFS
    after X decoded a CTS from Y.  Access mode is inferred *per
    (src, dst) flow* — a flow that has put an RTS on the air runs the
    four-way exchange; other flows run basic access, where DATA
    legitimately follows backoff.  (An RTS always precedes the flow's
    first DATA, so the inference is streaming-safe.)
duplicate-response
    A decoded RTS / DATA / CTS licenses exactly one SIFS response;
    answering the same decode twice is a violation.
nav-respected
    A node that *decoded* a frame not addressed to it, carrying a NAV
    duration D, does not start a transmission strictly inside
    ``(decode_time, decode_time + D)`` — except SIFS-separated
    responses (CTS/ACK, and DATA following a CTS), which the standard
    exempts from virtual carrier sense.
eifs-after-error
    The interframe space a node chooses (at busy->idle edges and when
    its backoff timer re-arms) is EIFS exactly when the node's last
    channel observation was a corrupted frame, DIFS otherwise.
backoff-conservation
    A committed countdown of k slots takes at least
    ``DIFS + k * slot`` between ``backoff_start`` and
    ``backoff_commit`` — a cheater that commits early breaks the
    invariant.  Uses the node's own slot length from the trace, so
    clock-drift faults do not false-positive.
assignment-echo
    Under the modified (CORRECT) protocol, a sender's stage-1 nominal
    backoff equals the last assignment its receiver gave it, and
    retry-stage nominals equal the shared deterministic function
    ``f`` applied to that stage-1 value.  Policy cheating alters only
    the *effective* countdown, never the nominal, so any nominal
    mismatch is a protocol bug (or a forged header).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.core.backoff_function import retry_backoff
from repro.phy.constants import ACK_SIZE_BYTES, PhyTimings
from repro.sim.trace import TraceEvent, TraceLog

#: Every rule the engine can emit, in report order.
RULE_NAMES = (
    "half-duplex",
    "min-turnaround",
    "cts-follows-rts",
    "ack-follows-data",
    "data-follows-cts",
    "duplicate-response",
    "nav-respected",
    "eifs-after-error",
    "backoff-conservation",
    "assignment-echo",
)

#: Response frame kind -> the decode kind that licenses it.
_TRIGGERS = {"cts": "rts", "ack": "data", "data": "cts"}
#: Decode kinds worth queueing for response matching (hot-path set).
_TRIGGER_KINDS = frozenset(_TRIGGERS.values())


@dataclass(frozen=True)
class Violation:
    """One conformance violation."""

    rule: str
    time: int
    node: int
    detail: str


@dataclass
class ConformanceReport:
    """Checker output: violations plus what was checked."""

    violations: List[Violation] = field(default_factory=list)
    transmissions: int = 0
    responses_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts


@dataclass
class _Decode:
    """One decoded trigger frame awaiting (at most one) SIFS response."""

    time: int
    frame_src: int
    consumed: bool = False


@dataclass
class _PendingBackoff:
    """An uncommitted countdown (backoff_start seen, commit pending)."""

    time: int
    effective: int
    slot_us: int


class ConformanceStream:
    """Streaming rule engine: feed events in trace order, then finish.

    State is bounded: per-node scalars, per-flow mode bits, and decode
    queues pruned as soon as time moves past their SIFS window.
    """

    def __init__(self, timings: Optional[PhyTimings] = None):
        self.timings = timings if timings is not None else PhyTimings()
        self.report = ConformanceReport()
        t = self.timings
        self._sifs = t.sifs_us
        self._ack_air = t.frame_airtime_us(ACK_SIZE_BYTES)
        # Transmission spacing: running max of each node's tx end.
        self._tx_end: Dict[int, int] = {}
        # Flows (src, dst) observed to use the four-way exchange.
        self._rts_flows: Set[Tuple[int, int]] = set()
        # Decoded trigger frames per (listener, frame kind), time order.
        self._decodes: Dict[Tuple[int, str], Deque[_Decode]] = {}
        # Most recent decode already answered, per (listener, kind,
        # peer): lets a late second answer classify as a duplicate
        # response instead of a generic follows-* violation.
        self._answered: Dict[Tuple[int, str, int], int] = {}
        # NAV windows per node, (start, end), pruned lazily.
        self._nav: Dict[int, List[Tuple[int, int]]] = {}
        # EIFS model: last channel observation was an error.
        self._error_pending: Dict[int, bool] = {}
        self._crashed: Set[int] = set()
        # Per-node slot length learned from backoff_start (clock drift).
        self._slot_us: Dict[int, int] = {}
        # Countdown awaiting its commit, per node.
        self._backoff: Dict[int, _PendingBackoff] = {}
        # CORRECT bookkeeping: last assignment per (sender, receiver)
        # and last stage-1 nominal per (sender, receiver).
        self._assignments: Dict[Tuple[int, int], int] = {}
        self._stage1: Dict[Tuple[int, int], int] = {}
        # Cached (difs, eifs) per node, invalidated when a
        # backoff_start teaches a different slot length.
        self._ifs_cache: Dict[int, Tuple[int, int]] = {}
        # Single-lookup dispatch: feed() runs once per trace event.
        self._dispatch = {
            "tx_start": self._on_tx_start,
            "decode": self._on_decode,
            "corrupt": self._on_corrupt,
            "defer": self._on_ifs_choice,
            "ifs": self._on_ifs_choice,
            "backoff_start": self._on_backoff_start,
            "backoff_commit": self._on_backoff_commit,
            "assignment": self._on_assignment,
            "mac_crash": self._on_crash,
            "mac_restart": self._on_restart,
        }

    # ------------------------------------------------------------------
    def feed(self, event: TraceEvent) -> None:
        """Consume one trace event (events must arrive in trace order)."""
        handler = self._dispatch.get(event.kind)
        if handler is not None:
            handler(event)
        # fault_drop / jam_* / mac_state are informational.

    def finish(self) -> ConformanceReport:
        """Return the report (the stream may keep being fed afterwards)."""
        return self.report

    # ------------------------------------------------------------------
    def _flag(self, rule: str, time: int, node: int, detail: str) -> None:
        self.report.violations.append(Violation(rule, time, node, detail))

    def _node_difs(self, node: int) -> int:
        slot = self._slot_us.get(node, self.timings.slot_us)
        return self._sifs + 2 * slot

    def _node_eifs(self, node: int) -> int:
        return self._sifs + self._ack_air + self._node_difs(node)

    # ------------------------------------------------------------------
    # Medium events
    # ------------------------------------------------------------------
    def _on_tx_start(self, event: TraceEvent) -> None:
        node, now, data = event.node, event.time, event.data
        kind = str(data["frame_kind"])
        dst = data["dst"]
        self.report.transmissions += 1

        # half-duplex / min-turnaround against the running max of own
        # transmission ends (a later-but-shorter frame must not reset
        # the horizon, or an overlap with the longer one goes unseen).
        prev = self._tx_end.get(node)
        if prev is not None:
            if now < prev:
                self._flag(
                    "half-duplex", now, node,
                    f"tx starts at {now} before own tx ends at {prev}",
                )
            elif now - prev < self._sifs:
                self._flag(
                    "min-turnaround", now, node,
                    f"gap {now - prev} us < SIFS",
                )
        end = int(data["end"])
        self._tx_end[node] = end if prev is None else max(end, prev)

        if kind == "rts":
            self._rts_flows.add((node, dst))

        is_response = False
        trigger = _TRIGGERS.get(kind)
        if trigger is not None and (
            kind != "data" or (node, dst) in self._rts_flows
        ):
            is_response = self._match_response(node, dst, kind, trigger, now)

        # NAV: SIFS responses are exempt from virtual carrier sense
        # (the standard's SIFS precedence); everything initiated by
        # backoff must respect it.
        if not (kind in ("cts", "ack") or is_response):
            self._check_nav(node, now)

    def _match_response(
        self, node: int, dst: int, kind: str, trigger: str, now: int
    ) -> bool:
        self.report.responses_checked += 1
        queue = self._decodes.get((node, trigger))
        want = now - self._sifs
        match: Optional[_Decode] = None
        spent: Optional[_Decode] = None
        if queue is not None:
            # Trace order means future responses come at >= now, so
            # decodes strictly before this SIFS window are dead.
            while queue and queue[0].time < want:
                queue.popleft()
            for entry in queue:
                if entry.time > want:
                    break
                if entry.frame_src == dst:
                    if not entry.consumed:
                        match = entry
                        break
                    spent = entry
        if match is not None:
            match.consumed = True
            self._answered[(node, trigger, dst)] = match.time
            return True
        answered = self._answered.get((node, trigger, dst))
        if spent is not None or answered is not None:
            when = want if spent is not None else answered
            self._flag(
                "duplicate-response", now, node,
                f"second {kind} answering the {trigger} decoded at t={when}",
            )
            return True
        self._flag(
            f"{kind}-follows-{trigger}", now, node,
            f"{kind} to {dst} lacks a {trigger} decoded at t={want}",
        )
        return False

    def _check_nav(self, node: int, now: int) -> None:
        windows = self._nav.get(node)
        if not windows:
            return
        live = [(s, e) for (s, e) in windows if e > now]
        self._nav[node] = live
        for start, end in live:
            if start < now < end:
                self._flag(
                    "nav-respected", now, node,
                    f"tx inside NAV window ({start}, {end})",
                )
                return

    def _on_decode(self, event: TraceEvent) -> None:
        node, data = event.node, event.data
        if node not in self._crashed:
            # Any successful decode clears pending-EIFS at the MAC.
            self._error_pending[node] = False
        kind = str(data["frame_kind"])
        dst = data["dst"]
        if dst == node:
            if kind in _TRIGGER_KINDS:
                # Response matching reacts to the *claimed* source
                # (frame_src), which is what the listener's MAC sees —
                # it differs from the true transmitter under spoofing.
                frame_src = data.get("frame_src", data["src"])
                self._decodes.setdefault((node, kind), deque()).append(
                    _Decode(time=event.time, frame_src=int(frame_src))
                )
            return
        duration = int(data.get("duration_us", 0) or 0)
        if duration > 0:
            self._nav.setdefault(node, []).append(
                (event.time, event.time + duration)
            )

    def _on_corrupt(self, event: TraceEvent) -> None:
        if event.node not in self._crashed:
            self._error_pending[event.node] = True

    # ------------------------------------------------------------------
    # MAC events
    # ------------------------------------------------------------------
    def _on_ifs_choice(self, event: TraceEvent) -> None:
        node = event.node
        chosen = int(event.data["ifs_us"])
        expect_eifs = self._error_pending.get(node, False)
        pair = self._ifs_cache.get(node)
        if pair is None:
            pair = (self._node_difs(node), self._node_eifs(node))
            self._ifs_cache[node] = pair
        expected = pair[1] if expect_eifs else pair[0]
        if chosen != expected:
            self._flag(
                "eifs-after-error", event.time, node,
                f"{event.kind} chose {chosen} us, expected "
                f"{'EIFS' if expect_eifs else 'DIFS'} = {expected} us",
            )
        if event.kind == "ifs":
            # The backoff timer consumes (and clears) the EIFS debt;
            # a busy->idle "defer" merely peeks at it.
            self._error_pending[node] = False

    def _on_backoff_start(self, event: TraceEvent) -> None:
        node, data = event.node, event.data
        slot = int(data["slot_us"])
        if self._slot_us.get(node) != slot:
            self._slot_us[node] = slot
            self._ifs_cache.pop(node, None)
        self._backoff[node] = _PendingBackoff(
            time=event.time, effective=int(data["effective"]), slot_us=slot
        )
        if not data.get("modified"):
            return
        nominal = int(data["nominal"])
        stage = int(data.get("stage", 1))
        flow = (node, data.get("dst", -1))
        if stage == 1:
            self._stage1[flow] = nominal
            assigned = self._assignments.get(flow)
            if assigned is not None and nominal != assigned:
                self._flag(
                    "assignment-echo", event.time, node,
                    f"stage-1 nominal {nominal} != assigned {assigned} "
                    f"from receiver {flow[1]}",
                )
        else:
            stage1 = self._stage1.get(flow)
            if stage1 is None:
                return
            expected = retry_backoff(
                stage1, node, stage,
                self.timings.cw_min, self.timings.cw_max,
            )
            if nominal != expected:
                self._flag(
                    "assignment-echo", event.time, node,
                    f"stage-{stage} nominal {nominal} != f(stage1="
                    f"{stage1}) = {expected}",
                )

    def _on_backoff_commit(self, event: TraceEvent) -> None:
        pending = self._backoff.pop(event.node, None)
        if pending is None:
            return
        elapsed = event.time - pending.time
        need = self._node_difs(event.node) + pending.effective * pending.slot_us
        if elapsed < need:
            self._flag(
                "backoff-conservation", event.time, event.node,
                f"{pending.effective}-slot countdown committed after "
                f"{elapsed} us < DIFS + slots * slot = {need} us",
            )

    def _on_assignment(self, event: TraceEvent) -> None:
        # Stored-after-audit value; keyed by (sender, receiver).
        self._assignments[(event.node, event.data["src"])] = int(
            event.data["value"]
        )

    def _on_crash(self, event: TraceEvent) -> None:
        node = event.node
        self._crashed.add(node)
        # Volatile MAC state vanishes: pending EIFS debt and any
        # uncommitted countdown (its commit will never arrive).
        self._error_pending[node] = False
        self._backoff.pop(node, None)

    def _on_restart(self, event: TraceEvent) -> None:
        self._crashed.discard(event.node)


class ProtocolChecker:
    """Replays a trace against the DCF sequencing rules."""

    def __init__(self, timings: Optional[PhyTimings] = None):
        self.timings = timings if timings is not None else PhyTimings()

    def stream(self) -> ConformanceStream:
        """A fresh streaming engine (feed events as they are recorded)."""
        return ConformanceStream(self.timings)

    def check(self, trace: TraceLog) -> ConformanceReport:
        """One-shot: replay a complete trace and return the report."""
        stream = self.stream()
        for event in trace:
            stream.feed(event)
        return stream.finish()
