"""Node mobility models.

The paper motivates *fast* misbehavior detection with mobility: "it
may not be feasible to monitor the behavior of senders over a large
sequence of transmissions when the node mobility is high" — a receiver
only gets a short window of packets from a passing sender.  These
models let experiments quantify that: how much of a mobile cheater's
traffic gets diagnosed before it moves on?

Positions advance in discrete steps (default 100 ms).  Between steps
the medium sees static geometry; at each step the mover pushes the new
position into the medium, which refreshes link probabilities for
subsequent transmissions.  At vehicular speeds (30 m/s) a step moves a
node 3 m — far below the shadowing model's spatial resolution.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Optional, Tuple

from repro.phy.medium import Medium
from repro.sim.engine import Simulator

Position = Tuple[float, float]


class LinearMobility:
    """Constant-velocity motion (e.g. a drive-by node).

    Parameters
    ----------
    sim / medium:
        Kernel and channel to update.
    node_id:
        The moving node.
    velocity_mps:
        (vx, vy) in meters/second.
    step_us:
        Position-update period.
    on_step:
        Optional callback invoked after each update (telemetry).
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: int,
        velocity_mps: Tuple[float, float],
        step_us: int = 100_000,
        on_step: Optional[Callable[[Position], None]] = None,
    ):
        if step_us <= 0:
            raise ValueError("step_us must be positive")
        self.sim = sim
        self.medium = medium
        self.node_id = node_id
        self.velocity = velocity_mps
        self.step_us = step_us
        self.on_step = on_step
        self._active = True
        sim.schedule(step_us, self._step)

    def stop(self) -> None:
        """Freeze the node at its current position."""
        self._active = False

    @property
    def speed_mps(self) -> float:
        return math.hypot(*self.velocity)

    def _step(self) -> None:
        if not self._active:
            return
        x, y = self.medium.position_of(self.node_id)
        dt = self.step_us / 1_000_000
        new_position = (x + self.velocity[0] * dt, y + self.velocity[1] * dt)
        self.medium.update_position(self.node_id, new_position)
        if self.on_step is not None:
            self.on_step(new_position)
        self.sim.schedule(self.step_us, self._step)


class RandomWaypointMobility:
    """Random waypoint model inside a rectangular area.

    The node picks a uniform destination and speed from
    ``[min_speed, max_speed]``, travels there in straight-line steps,
    optionally pauses, then repeats — the classic ad hoc evaluation
    model.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: int,
        rng: random.Random,
        area: Tuple[float, float] = (1500.0, 700.0),
        min_speed_mps: float = 1.0,
        max_speed_mps: float = 10.0,
        pause_us: int = 0,
        step_us: int = 100_000,
    ):
        if not 0.0 < min_speed_mps <= max_speed_mps:
            raise ValueError("require 0 < min_speed <= max_speed")
        if step_us <= 0:
            raise ValueError("step_us must be positive")
        self.sim = sim
        self.medium = medium
        self.node_id = node_id
        self.rng = rng
        self.area = area
        self.min_speed = min_speed_mps
        self.max_speed = max_speed_mps
        self.pause_us = pause_us
        self.step_us = step_us
        self._active = True
        self._target: Position = (0.0, 0.0)
        self._speed = min_speed_mps
        self.legs_completed = 0
        self._choose_leg()
        sim.schedule(step_us, self._step)

    def stop(self) -> None:
        self._active = False

    def _choose_leg(self) -> None:
        width, height = self.area
        self._target = (
            self.rng.uniform(0.0, width), self.rng.uniform(0.0, height)
        )
        self._speed = self.rng.uniform(self.min_speed, self.max_speed)

    def _step(self) -> None:
        if not self._active:
            return
        x, y = self.medium.position_of(self.node_id)
        tx, ty = self._target
        remaining = math.hypot(tx - x, ty - y)
        stride = self._speed * self.step_us / 1_000_000
        if remaining <= stride:
            self.medium.update_position(self.node_id, self._target)
            self.legs_completed += 1
            self._choose_leg()
            self.sim.schedule(self.step_us + self.pause_us, self._step)
            return
        fraction = stride / remaining
        new_position = (x + (tx - x) * fraction, y + (ty - y) * fraction)
        self.medium.update_position(self.node_id, new_position)
        self.sim.schedule(self.step_us, self._step)
