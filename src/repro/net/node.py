"""Node assembly: position + MAC + optional traffic source.

A :class:`Node` is a thin bundle that wires a MAC instance onto the
medium at a position and attaches its traffic source.  Scenario
builders (:mod:`repro.experiments.scenarios`) create one per topology
entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass
class Node:
    """One wireless host.

    Attributes
    ----------
    node_id:
        Unique identity shared with the MAC.
    position:
        (x, y) in meters.
    mac:
        The node's MAC instance (already registered on the medium).
    source:
        Traffic source when the node originates a flow, else None.
    """

    node_id: int
    position: Tuple[float, float]
    mac: object
    source: Optional[object] = None

    def start(self) -> None:
        """Kick off the node's sender half (no-op for pure receivers)."""
        if self.source is not None:
            self.mac.start()


def build_node(medium, mac, position, source=None) -> Node:
    """Register ``mac`` on ``medium`` at ``position`` and bundle it."""
    medium.register(mac, position)
    if source is not None:
        source.attach(mac)
        mac.attach_source(source)
    return Node(node_id=mac.node_id, position=position, mac=mac, source=source)
