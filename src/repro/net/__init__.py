"""Nodes, traffic sources, and the paper's topologies."""

from repro.net.mobility import LinearMobility, RandomWaypointMobility
from repro.net.node import Node, build_node
from repro.net.topology import (
    CIRCLE_RADIUS_M,
    FlowSpec,
    Topology,
    circle_positions,
    circle_topology,
    random_topology,
)
from repro.net.traffic import BackloggedSource, CbrSource, Packet

__all__ = [
    "LinearMobility",
    "RandomWaypointMobility",
    "Node",
    "build_node",
    "CIRCLE_RADIUS_M",
    "FlowSpec",
    "Topology",
    "circle_positions",
    "circle_topology",
    "random_topology",
    "BackloggedSource",
    "CbrSource",
    "Packet",
]
