"""Traffic sources: backlogged and constant-bit-rate flows.

The paper's evaluation uses two kinds of traffic:

* the contending senders are "always backlogged" CBR flows at 2 Mbps
  with 512-byte packets — at a 2 Mbps channel rate that offered load
  saturates the MAC, so :class:`BackloggedSource` models them exactly
  (a packet is always ready);
* the TWO-FLOW interferers are 500 Kbps CBR flows, which are *not*
  saturating — :class:`CbrSource` generates arrivals on a fixed
  period and wakes the MAC when the queue transitions empty -> busy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Optional
from collections import deque

from repro.sim.engine import Simulator


@dataclass(frozen=True)
class Packet:
    """An application packet awaiting MAC delivery."""

    dst: int
    payload_bytes: int
    created_us: int
    seq: int


class BackloggedSource:
    """A source that always has the next packet ready.

    Parameters
    ----------
    dst:
        Destination node of the flow.
    payload_bytes:
        Application payload per packet (512 in the paper).
    """

    def __init__(self, dst: int, payload_bytes: int = 512):
        self.dst = dst
        self.payload_bytes = payload_bytes
        self._seq = 0
        self.packets_issued = 0

    def attach(self, mac) -> None:
        """Backlogged sources never need to wake the MAC."""

    def next_packet(self, now: int) -> Packet:
        """Hand out the next packet (never None)."""
        self._seq += 1
        self.packets_issued += 1
        return Packet(
            dst=self.dst, payload_bytes=self.payload_bytes,
            created_us=now, seq=self._seq,
        )

    def packet_done(self, now: int) -> None:
        """Delivery/drop notification; nothing to track."""


class CbrSource:
    """Constant-bit-rate source with a FIFO queue.

    Parameters
    ----------
    sim:
        Event kernel (arrivals are scheduled on it).
    dst:
        Destination node.
    rate_bps:
        Application-layer rate; together with ``payload_bytes`` this
        fixes the packet period.
    payload_bytes:
        Payload per packet.
    start_us:
        Time of the first arrival.
    max_queue:
        Arrivals beyond this queue depth are dropped at the source
        (keeps an overloaded interferer from hoarding memory).
    """

    def __init__(
        self,
        sim: Simulator,
        dst: int,
        rate_bps: int,
        payload_bytes: int = 512,
        start_us: int = 0,
        max_queue: int = 64,
    ):
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.sim = sim
        self.dst = dst
        self.payload_bytes = payload_bytes
        self.interval_us = max(round(payload_bytes * 8 * 1_000_000 / rate_bps), 1)
        self.max_queue = max_queue
        self._queue: Deque[Packet] = deque()
        self._seq = 0
        self._mac = None
        self.packets_generated = 0
        self.source_drops = 0
        sim.schedule(start_us, self._arrival)

    def attach(self, mac) -> None:
        """Connect the consuming MAC so empty->busy edges wake it."""
        self._mac = mac

    def _arrival(self) -> None:
        self._seq += 1
        self.packets_generated += 1
        if len(self._queue) >= self.max_queue:
            self.source_drops += 1
        else:
            self._queue.append(
                Packet(
                    dst=self.dst, payload_bytes=self.payload_bytes,
                    created_us=self.sim.now, seq=self._seq,
                )
            )
            if len(self._queue) == 1 and self._mac is not None:
                self._mac.wake()
        self.sim.schedule(self.interval_us, self._arrival)

    def next_packet(self, now: int) -> Optional[Packet]:
        """Pop the head-of-line packet, or None when the queue is empty."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def packet_done(self, now: int) -> None:
        """Delivery/drop notification; the queue already advanced."""

    @property
    def queue_depth(self) -> int:
        """Packets currently waiting."""
        return len(self._queue)
