"""Topologies of the paper's evaluation (Section 5).

Three layouts are used:

* the **circle** topology — ``n`` senders equidistant on a 150 m
  circle around a common receiver R (Figure 3), optionally with the
  two interferer flows A->B and C->D placed 500 m on either side of R;
* parametric variants of the circle for the network-size sweeps of
  Figures 6 and 7 (1 to 64 senders);
* the **random** topology of Figure 9 — 40 nodes uniform in a
  1500 m x 700 m area, each setting up a CBR connection to one of its
  neighbors, with 5 randomly chosen senders misbehaving.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.phy.propagation import RECEIVE_RANGE_M, distance

Position = Tuple[float, float]

#: Radius of the sender circle around the receiver (Figure 3).
CIRCLE_RADIUS_M = 150.0

#: Distance of each interferer flow from the receiver (Figure 3).
INTERFERER_OFFSET_M = 500.0

#: Distance between an interferer sender and its own receiver.
INTERFERER_LINK_M = 150.0

#: Random-topology area of Figure 9.
RANDOM_AREA_M = (1500.0, 700.0)


@dataclass(frozen=True)
class FlowSpec:
    """One CBR flow: sender, receiver, rate (None = backlogged), PM.

    ``measured`` marks flows whose senders count toward the paper's
    per-sender metrics; the TWO-FLOW interferers are load, not
    subjects, and are created with ``measured=False``.
    """

    src: int
    dst: int
    rate_bps: Optional[int] = None
    pm_percent: float = 0.0
    measured: bool = True

    @property
    def misbehaving(self) -> bool:
        return self.pm_percent > 0.0


@dataclass
class Topology:
    """Node positions plus the flows running over them."""

    positions: Dict[int, Position]
    flows: List[FlowSpec] = field(default_factory=list)

    @property
    def node_ids(self) -> List[int]:
        return sorted(self.positions)

    @property
    def senders(self) -> List[int]:
        return [f.src for f in self.flows]

    @property
    def misbehaving_senders(self) -> List[int]:
        return [f.src for f in self.flows if f.misbehaving]

    def flow_of(self, src: int) -> FlowSpec:
        for flow in self.flows:
            if flow.src == src:
                return flow
        raise KeyError(f"no flow originates at node {src}")


def circle_positions(n_senders: int, radius_m: float = CIRCLE_RADIUS_M) -> List[Position]:
    """Positions of ``n`` senders equidistant on a circle around (0,0).

    Sender ``i`` (1-based in the paper's numbering) sits at angle
    ``(i-1) * 2*pi/n``.
    """
    if n_senders < 1:
        raise ValueError("need at least one sender")
    positions = []
    for i in range(n_senders):
        angle = 2.0 * math.pi * i / n_senders
        positions.append((radius_m * math.cos(angle), radius_m * math.sin(angle)))
    return positions


def circle_topology(
    n_senders: int = 8,
    misbehaving: Tuple[int, ...] = (),
    pm_percent: float = 0.0,
    with_interferers: bool = False,
    interferer_rate_bps: int = 500_000,
    radius_m: float = CIRCLE_RADIUS_M,
) -> Topology:
    """The Figure 3 setup.

    Node ids: receiver R is 0; senders are 1..n (paper numbering);
    interferers A, B, C, D are 101, 102, 103, 104.  ``misbehaving``
    lists sender ids (the paper uses node 3) that run with
    ``pm_percent`` misbehavior; all senders are backlogged toward R.

    ZERO-FLOW is ``with_interferers=False``; TWO-FLOW turns on the two
    500 Kbps CBR flows A->B and C->D at +-500 m.
    """
    positions: Dict[int, Position] = {0: (0.0, 0.0)}
    for i, pos in enumerate(circle_positions(n_senders, radius_m), start=1):
        positions[i] = pos
    flows = [
        FlowSpec(
            src=i,
            dst=0,
            rate_bps=None,
            pm_percent=pm_percent if i in misbehaving else 0.0,
        )
        for i in range(1, n_senders + 1)
    ]
    if with_interferers:
        offset = INTERFERER_OFFSET_M
        link = INTERFERER_LINK_M
        positions[101] = (-offset, 0.0)           # A
        positions[102] = (-offset - link, 0.0)    # B
        positions[103] = (offset, 0.0)            # C
        positions[104] = (offset + link, 0.0)     # D
        flows.append(
            FlowSpec(src=101, dst=102, rate_bps=interferer_rate_bps, measured=False)
        )
        flows.append(
            FlowSpec(src=103, dst=104, rate_bps=interferer_rate_bps, measured=False)
        )
    return Topology(positions=positions, flows=flows)


def random_topology(
    rng: random.Random,
    n_nodes: int = 40,
    n_misbehaving: int = 5,
    pm_percent: float = 0.0,
    area_m: Tuple[float, float] = RANDOM_AREA_M,
    neighbor_range_m: float = RECEIVE_RANGE_M,
) -> Topology:
    """The Figure 9 setup: random placement, CBR to a nearby neighbor.

    Each node sets up one backlogged CBR connection to a uniformly
    chosen neighbor within reliable reception range (falling back to
    the nearest node when isolated).  ``n_misbehaving`` senders are
    drawn at random and given ``pm_percent`` misbehavior.
    """
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    if not 0 <= n_misbehaving <= n_nodes:
        raise ValueError("n_misbehaving out of range")
    width, height = area_m
    positions: Dict[int, Position] = {
        i: (rng.uniform(0.0, width), rng.uniform(0.0, height))
        for i in range(1, n_nodes + 1)
    }
    misbehaving = set(rng.sample(sorted(positions), n_misbehaving))
    flows: List[FlowSpec] = []
    for src in sorted(positions):
        neighbors = [
            other
            for other in positions
            if other != src
            and distance(positions[src], positions[other]) <= neighbor_range_m
        ]
        if neighbors:
            dst = rng.choice(sorted(neighbors))
        else:
            dst = min(
                (other for other in positions if other != src),
                key=lambda other: distance(positions[src], positions[other]),
            )
        flows.append(
            FlowSpec(
                src=src,
                dst=dst,
                rate_bps=None,
                pm_percent=pm_percent if src in misbehaving else 0.0,
            )
        )
    return Topology(positions=positions, flows=flows)
