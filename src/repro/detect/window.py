"""The paper's W/THRESH diagnosis window as a pluggable detector.

:class:`WindowDetector` adapts :class:`repro.core.diagnosis.DiagnosisWindow`
to the :class:`~repro.detect.base.Detector` protocol without changing a
single arithmetic operation: ``observe`` forwards the same
``B_exp - B_act`` float the monitor previously pushed into
``DiagnosisWindow.update``, so a run using this adapter is
bit-identical to the pre-registry code path (regression-tested in
``tests/test_detect_scenarios.py``).
"""

from __future__ import annotations

from repro.core.diagnosis import DiagnosisWindow
from repro.detect.base import Observation


class WindowDetector:
    """Windowed-sum detector (Section 4.3 of the paper).

    Parameters
    ----------
    window:
        ``W`` — number of most recent packets considered.
    thresh:
        ``THRESH`` — slot threshold on the windowed sum.
    """

    name = "window"

    def __init__(self, window: int, thresh: float):
        self.window = DiagnosisWindow(int(window), thresh)

    def observe(self, observation: Observation) -> bool:
        return self.window.update(observation.difference)

    @property
    def is_misbehaving(self) -> bool:
        return self.window.is_misbehaving

    @property
    def thresh(self) -> float:
        """Diagnosis threshold (settable: the adaptive-THRESH hook)."""
        return self.window.thresh

    @thresh.setter
    def thresh(self, value: float) -> None:
        self.window.thresh = float(value)

    @property
    def windowed_sum(self) -> float:
        return self.window.windowed_sum

    @property
    def observations(self) -> int:
        return self.window.observations

    @property
    def flagged_observations(self) -> int:
        return self.window.flagged_observations

    def reset(self) -> None:
        self.window.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WindowDetector({self.window!r})"
