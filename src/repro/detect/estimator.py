"""Effective-CWmin estimator detector.

After Yazdani-Abyaneh & Krunz, "CWmin Estimation and Collision
Identification in Wi-Fi Systems" (see PAPERS.md): a monitor that
observes a station's backoff draws can estimate the contention-window
parameter the station is *actually* using and compare it against the
value it was assigned — a cheater that counts down only part of its
backoff looks exactly like a station configured with a smaller CWmin.

Under the paper's receiver-assigned scheme the expectation ``B_exp``
of every transmission is known, so the estimator reduces to a ratio:
over a sliding sample window,

    CWmin_eff = cw_min * sum(B_act) / sum(B_exp)

an honest sender keeps the ratio near 1 (CWmin_eff ~ cw_min), while a
sender honoring only a fraction ``f`` of its backoffs drives the
estimate toward ``f * cw_min``.  The sender stands diagnosed while the
estimate sits below ``fraction * cw_min`` (after a minimum number of
samples, so a single noisy observation cannot convict).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.detect.base import DetectorBase, Observation


class CwminEstimatorDetector(DetectorBase):
    """Sequential effective-CWmin estimate vs the assigned value.

    Parameters
    ----------
    fraction:
        Diagnosis boundary as a fraction of the assigned CWmin: the
        sender is flagged while ``CWmin_eff < fraction * cw_min``.
    min_samples:
        Observations required before the estimate is trusted.
    window:
        Sliding window length (samples) of the estimate, so a sender
        that reforms is eventually cleared.
    cw_min:
        The assigned minimum contention window (slots).
    """

    name = "estimator"

    def __init__(
        self,
        fraction: float = 0.5,
        min_samples: int = 8,
        window: int = 64,
        cw_min: float = 31.0,
    ):
        super().__init__()
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if window < min_samples:
            raise ValueError(
                f"window ({window}) must be >= min_samples ({min_samples})"
            )
        if cw_min <= 0:
            raise ValueError(f"cw_min must be > 0, got {cw_min}")
        self.fraction = float(fraction)
        self.min_samples = int(min_samples)
        self.window_size = int(window)
        self.cw_min = float(cw_min)
        self._samples: Deque[Tuple[float, float]] = deque(
            maxlen=self.window_size
        )
        self._act_sum = 0.0
        self._exp_sum = 0.0

    def _update(self, observation: Observation) -> bool:
        if len(self._samples) == self.window_size:
            old_act, old_exp = self._samples[0]
            self._act_sum -= old_act
            self._exp_sum -= old_exp
        pair = (float(observation.b_act), float(observation.b_exp))
        self._samples.append(pair)
        self._act_sum += pair[0]
        self._exp_sum += pair[1]
        return self.is_misbehaving

    @property
    def estimate(self) -> float:
        """Current effective-CWmin estimate in slots.

        With no usable expectation mass yet the sender is given the
        benefit of the doubt: the estimate reports the assigned value.
        """
        if self._exp_sum <= 0.0:
            return self.cw_min
        return self.cw_min * max(self._act_sum, 0.0) / self._exp_sum

    @property
    def is_misbehaving(self) -> bool:
        if len(self._samples) < self.min_samples:
            return False
        return self.estimate < self.fraction * self.cw_min

    def reset(self) -> None:
        super().reset()
        self._samples.clear()
        self._act_sum = 0.0
        self._exp_sum = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CwminEstimatorDetector(est={self.estimate:.1f}, "
            f"bound={self.fraction * self.cw_min:.1f}, "
            f"n={len(self._samples)}/{self.window_size})"
        )
