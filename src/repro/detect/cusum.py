"""One-sided CUSUM detector on the normalized backoff deficit.

After Cao, Li & Cheng, "Real-Time Misbehavior Detection in IEEE
802.11e Based WLANs" (see PAPERS.md): misbehavior that shortens
backoffs shifts the mean of the observed deficit upward, and a
cumulative-sum sequential test detects that shift with a tunable
trade between detection delay and false alarms.

Mapping to the cited test
-------------------------
Cao et al. run nonparametric CUSUM on the (bounded, normalized)
observed backoff of each transmission.  Here the receiver already
reconstructs the expectation ``B_exp``, so the test statistic is the
normalized *deficit* ``x_n = (B_exp - B_act) / norm``:

    S_0 = 0,   S_n = max(0, S_{n-1} + x_n - k)

and the sender stands diagnosed while ``S_n > h``.  ``k`` (the
reference/allowance value) absorbs the honest channel-asymmetry noise:
an honest sender's deficit hovers around zero, so ``x_n - k`` is
negative on average and ``S`` sticks to the reflecting barrier at 0.
A persistent cheater with PM misbehavior yields ``x_n ~ PM/100 *
B_exp / norm``, so ``S`` climbs at a constant rate and crosses ``h``
after roughly ``h / (PM/100 - k)`` packets — the classic
false-alarm-rate vs detection-delay dial.
"""

from __future__ import annotations

from repro.detect.base import DetectorBase, Observation


class CusumDetector(DetectorBase):
    """One-sided (positive-drift) CUSUM test on the backoff deficit.

    Parameters
    ----------
    h:
        Decision threshold on the cumulative statistic.  Larger means
        fewer false alarms and slower detection.
    k:
        Reference value (per-observation drift allowance) subtracted
        from each normalized deficit before accumulation.
    norm:
        Slots per unit of normalized deficit; the paper's CWmin is the
        natural scale (one full minimum contention window of deficit
        counts as 1.0).
    """

    name = "cusum"

    def __init__(self, h: float = 2.0, k: float = 0.25, norm: float = 31.0):
        super().__init__()
        if h <= 0:
            raise ValueError(f"h must be > 0, got {h}")
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        if norm <= 0:
            raise ValueError(f"norm must be > 0, got {norm}")
        self.h = float(h)
        self.k = float(k)
        self.norm = float(norm)
        self.statistic = 0.0

    def _update(self, observation: Observation) -> bool:
        x = observation.difference / self.norm
        self.statistic = max(0.0, self.statistic + x - self.k)
        return self.is_misbehaving

    @property
    def is_misbehaving(self) -> bool:
        return self.statistic > self.h

    def reset(self) -> None:
        super().reset()
        self.statistic = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CusumDetector(S={self.statistic:.2f}, h={self.h}, "
            f"k={self.k}, norm={self.norm})"
        )
