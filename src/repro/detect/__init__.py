"""Pluggable online misbehavior-detection subsystem.

The paper hard-codes one detector — the W/THRESH windowed sum of
Section 4.3.  This package turns detection into a first-class design
axis: a :class:`~repro.detect.base.Detector` protocol (per-sender
online state fed one observation per received packet), a string-keyed
registry with compact config parsing, and three built-in families:

``window``
    The paper's scheme, adapting :class:`repro.core.diagnosis.
    DiagnosisWindow` bit-identically (the default everywhere).
``cusum``
    One-sided CUSUM sequential test on the normalized backoff deficit,
    after Cao et al.
``estimator``
    Sequential effective-CWmin estimation against the assigned value,
    after Yazdani-Abyaneh & Krunz.

See ``docs/DETECTORS.md`` for the protocol contract, the parameter
mapping to the cited papers, and how to add a detector.
"""

from repro.detect.base import (
    OBSERVATION_SCHEMA_VERSION,
    Detector,
    DetectorBase,
    Observation,
    ObservationDecodeError,
)
from repro.detect.cusum import CusumDetector
from repro.detect.estimator import CwminEstimatorDetector
from repro.detect.registry import (
    DEFAULT_DETECTOR,
    DetectorSpecError,
    detector_factory,
    make_detector,
    parse_spec,
    register,
    registered_detectors,
)
from repro.detect.window import WindowDetector

__all__ = [
    "DEFAULT_DETECTOR",
    "OBSERVATION_SCHEMA_VERSION",
    "CusumDetector",
    "CwminEstimatorDetector",
    "Detector",
    "DetectorBase",
    "DetectorSpecError",
    "Observation",
    "ObservationDecodeError",
    "WindowDetector",
    "detector_factory",
    "make_detector",
    "parse_spec",
    "register",
    "registered_detectors",
]
