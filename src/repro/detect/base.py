"""Detector protocol: the unit every online detector implements.

The paper's diagnosis scheme (Section 4.3) is one fixed detector — a
windowed sum of ``B_exp - B_act`` against ``THRESH``.  Related work
shows it is one point in a design space: Cao et al. detect the same
attack with a CUSUM sequential test, Yazdani-Abyaneh & Krunz estimate
the sender's effective CWmin from observed backoffs.  This module
defines the shared contract so the receiver pipeline can host any of
them interchangeably.

A detector is *per-sender online state*: the monitoring receiver feeds
it one :class:`Observation` per judged packet (in arrival order) and
reads back a diagnosed/cleared verdict.  Detectors must be
deterministic functions of their observation stream — no hidden
randomness — so that runs remain bit-reproducible and two receivers
fed the same stream agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Protocol, runtime_checkable

#: Version tag carried by every :meth:`Observation.to_dict` record.
#: Bump it when a field is added/renamed; :meth:`Observation.from_dict`
#: rejects records from a version it does not read.
OBSERVATION_SCHEMA_VERSION = 1


class ObservationDecodeError(ValueError):
    """An observation record does not match the versioned schema."""


@dataclass(frozen=True)
class Observation:
    """One judged packet reception, as seen by the receiver's monitor.

    Attributes
    ----------
    b_exp:
        Backoff (slots) the sender was expected to wait, including any
        reconstructed retransmission stages and standing penalties.
    b_act:
        Idle slots the receiver actually observed before the packet.
    retries:
        Attempt number carried by the observed transmission (1-based).
    time_us:
        Simulation time of the observation, for latency accounting.
    """

    b_exp: float
    b_act: float
    retries: int = 1
    time_us: int = 0

    @property
    def difference(self) -> float:
        """Signed backoff deficit ``B_exp - B_act`` in slots.

        Positive when the sender waited less than expected — exactly
        the quantity the paper's diagnosis window accumulates.
        """
        return float(self.b_exp - self.b_act)

    # ------------------------------------------------------------------
    # Versioned dict codec (the detection service's wire format; also
    # useful for trace tooling that wants observations as plain JSON).
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """This observation as a plain, versioned, JSON-ready dict.

        The inverse of :meth:`from_dict`: ``Observation.from_dict(
        obs.to_dict()) == obs`` for every observation with finite
        backoff fields (JSON has no portable NaN/Inf).
        """
        return {
            "v": OBSERVATION_SCHEMA_VERSION,
            "b_exp": float(self.b_exp),
            "b_act": float(self.b_act),
            "retries": int(self.retries),
            "time_us": int(self.time_us),
        }

    @classmethod
    def from_dict(cls, data: object) -> "Observation":
        """Decode a :meth:`to_dict` record, strictly.

        The schema is deliberately unforgiving — this is a wire
        format, and a silently mis-read field would corrupt verdicts
        downstream.  Raises :class:`ObservationDecodeError` naming the
        offending field for: a non-mapping payload, a missing or
        unsupported ``v``, missing fields, unknown fields, wrong
        types (bools are not numbers), non-finite backoffs,
        ``retries < 1`` and ``time_us < 0``.
        """
        if not isinstance(data, dict):
            raise ObservationDecodeError(
                f"observation record must be a JSON object, "
                f"got {type(data).__name__}"
            )
        version = data.get("v")
        if version is None:
            raise ObservationDecodeError(
                "observation record has no 'v' schema-version field "
                f"(this build writes v={OBSERVATION_SCHEMA_VERSION})"
            )
        if version != OBSERVATION_SCHEMA_VERSION:
            raise ObservationDecodeError(
                f"unsupported observation schema version {version!r}; "
                f"this build reads v={OBSERVATION_SCHEMA_VERSION}"
            )
        expected = ("v", "b_exp", "b_act", "retries", "time_us")
        missing = [name for name in expected if name not in data]
        if missing:
            raise ObservationDecodeError(
                f"observation record missing field(s): "
                f"{', '.join(missing)} (expected {', '.join(expected)})"
            )
        unknown = [name for name in data if name not in expected]
        if unknown:
            raise ObservationDecodeError(
                f"observation record has unknown field(s): "
                f"{', '.join(sorted(unknown))} (schema "
                f"v={OBSERVATION_SCHEMA_VERSION} has {', '.join(expected)})"
            )
        values = {}
        for name in ("b_exp", "b_act"):
            value = data[name]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ObservationDecodeError(
                    f"observation field {name!r} must be a number, "
                    f"got {value!r}"
                )
            if not math.isfinite(value):
                raise ObservationDecodeError(
                    f"observation field {name!r} must be finite, "
                    f"got {value!r}"
                )
            values[name] = float(value)
        for name, minimum in (("retries", 1), ("time_us", 0)):
            value = data[name]
            if isinstance(value, bool) or not isinstance(value, int):
                raise ObservationDecodeError(
                    f"observation field {name!r} must be an integer, "
                    f"got {value!r}"
                )
            if value < minimum:
                raise ObservationDecodeError(
                    f"observation field {name!r} must be >= {minimum}, "
                    f"got {value}"
                )
            values[name] = value
        return cls(**values)


@runtime_checkable
class Detector(Protocol):
    """Per-sender online misbehavior detector.

    Implementations additionally expose ``observations`` and
    ``flagged_observations`` lifetime counters (see
    :class:`DetectorBase`) so metrics and higher layers can report
    flag rates without knowing the detector family.
    """

    def observe(self, observation: Observation) -> bool:
        """Fold one observation in; return the post-update verdict."""
        ...

    @property
    def is_misbehaving(self) -> bool:
        """Whether the sender currently stands diagnosed."""
        ...

    def reset(self) -> None:
        """Forget all history (e.g. after an administrative pardon)."""
        ...


class DetectorBase:
    """Counter bookkeeping shared by the non-window detectors.

    Subclasses implement :meth:`_update` returning the verdict for one
    observation; this base maintains the ``observations`` /
    ``flagged_observations`` lifetime tallies with the same semantics
    as :class:`repro.core.diagnosis.DiagnosisWindow`.
    """

    def __init__(self) -> None:
        #: Number of observations folded in (lifetime).
        self.observations = 0
        #: Number of observations on which the sender stood diagnosed.
        self.flagged_observations = 0

    def observe(self, observation: Observation) -> bool:
        flagged = self._update(observation)
        self.observations += 1
        if flagged:
            self.flagged_observations += 1
        return flagged

    def _update(self, observation: Observation) -> bool:
        raise NotImplementedError

    @property
    def is_misbehaving(self) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear the lifetime counters; subclasses extend with their
        own state (and must call ``super().reset()``)."""
        self.observations = 0
        self.flagged_observations = 0
