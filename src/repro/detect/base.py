"""Detector protocol: the unit every online detector implements.

The paper's diagnosis scheme (Section 4.3) is one fixed detector — a
windowed sum of ``B_exp - B_act`` against ``THRESH``.  Related work
shows it is one point in a design space: Cao et al. detect the same
attack with a CUSUM sequential test, Yazdani-Abyaneh & Krunz estimate
the sender's effective CWmin from observed backoffs.  This module
defines the shared contract so the receiver pipeline can host any of
them interchangeably.

A detector is *per-sender online state*: the monitoring receiver feeds
it one :class:`Observation` per judged packet (in arrival order) and
reads back a diagnosed/cleared verdict.  Detectors must be
deterministic functions of their observation stream — no hidden
randomness — so that runs remain bit-reproducible and two receivers
fed the same stream agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable


@dataclass(frozen=True)
class Observation:
    """One judged packet reception, as seen by the receiver's monitor.

    Attributes
    ----------
    b_exp:
        Backoff (slots) the sender was expected to wait, including any
        reconstructed retransmission stages and standing penalties.
    b_act:
        Idle slots the receiver actually observed before the packet.
    retries:
        Attempt number carried by the observed transmission (1-based).
    time_us:
        Simulation time of the observation, for latency accounting.
    """

    b_exp: float
    b_act: float
    retries: int = 1
    time_us: int = 0

    @property
    def difference(self) -> float:
        """Signed backoff deficit ``B_exp - B_act`` in slots.

        Positive when the sender waited less than expected — exactly
        the quantity the paper's diagnosis window accumulates.
        """
        return float(self.b_exp - self.b_act)


@runtime_checkable
class Detector(Protocol):
    """Per-sender online misbehavior detector.

    Implementations additionally expose ``observations`` and
    ``flagged_observations`` lifetime counters (see
    :class:`DetectorBase`) so metrics and higher layers can report
    flag rates without knowing the detector family.
    """

    def observe(self, observation: Observation) -> bool:
        """Fold one observation in; return the post-update verdict."""
        ...

    @property
    def is_misbehaving(self) -> bool:
        """Whether the sender currently stands diagnosed."""
        ...

    def reset(self) -> None:
        """Forget all history (e.g. after an administrative pardon)."""
        ...


class DetectorBase:
    """Counter bookkeeping shared by the non-window detectors.

    Subclasses implement :meth:`_update` returning the verdict for one
    observation; this base maintains the ``observations`` /
    ``flagged_observations`` lifetime tallies with the same semantics
    as :class:`repro.core.diagnosis.DiagnosisWindow`.
    """

    def __init__(self) -> None:
        #: Number of observations folded in (lifetime).
        self.observations = 0
        #: Number of observations on which the sender stood diagnosed.
        self.flagged_observations = 0

    def observe(self, observation: Observation) -> bool:
        flagged = self._update(observation)
        self.observations += 1
        if flagged:
            self.flagged_observations += 1
        return flagged

    def _update(self, observation: Observation) -> bool:
        raise NotImplementedError

    @property
    def is_misbehaving(self) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear the lifetime counters; subclasses extend with their
        own state (and must call ``super().reset()``)."""
        self.observations = 0
        self.flagged_observations = 0
