"""String-keyed detector registry and config-string parsing.

Detectors are addressed by compact spec strings so they can travel
through ``ScenarioConfig`` fields, CLI flags and cache fingerprints
unchanged::

    "window"                      # paper defaults (W, THRESH from config)
    "window:W=64,thresh=40"
    "cusum:h=2.0,k=0.25"
    "estimator:fraction=0.5,min_samples=8"

:func:`parse_spec` splits a spec into ``(name, params)``;
:func:`make_detector` builds one detector instance from a spec and the
run's :class:`~repro.core.params.ProtocolConfig` (which supplies the
defaults a spec does not override — ``W``/``THRESH`` for the window
detector, ``cw_min`` for the normalization of the other two);
:func:`detector_factory` returns a zero-argument callable the receiver
MAC invokes once per monitored sender.

Third-party detectors plug in through :func:`register`: a builder is
``(config, **params) -> Detector`` plus the parameter names it
accepts, and it immediately becomes reachable from every spec-string
surface (CLI, figure sweeps, scenario configs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.core.params import ProtocolConfig
from repro.detect.base import Detector
from repro.detect.cusum import CusumDetector
from repro.detect.estimator import CwminEstimatorDetector
from repro.detect.window import WindowDetector

#: Spec of the detector reproducing the paper's scheme (the default).
DEFAULT_DETECTOR = "window"


class DetectorSpecError(ValueError):
    """A detector spec string is malformed or names unknown things."""


@dataclass(frozen=True)
class _Entry:
    """One registry entry: builder plus its accepted parameter names."""

    builder: Callable[..., Detector]
    params: Tuple[str, ...]
    summary: str


_REGISTRY: Dict[str, _Entry] = {}


def register(
    name: str,
    builder: Callable[..., Detector],
    params: Tuple[str, ...],
    summary: str = "",
) -> None:
    """Add a detector family under ``name``.

    ``builder`` is called as ``builder(config, **parsed_params)`` and
    must return a fresh detector instance; ``params`` lists the
    parameter names specs may set (anything else is rejected with an
    error that cites this list).
    """
    if not name or any(c in name for c in ":,="):
        raise ValueError(f"invalid detector name {name!r}")
    _REGISTRY[name] = _Entry(builder=builder, params=tuple(params),
                             summary=summary)


def registered_detectors() -> Tuple[str, ...]:
    """Names of all registered detector families, sorted."""
    return tuple(sorted(_REGISTRY))


def _parse_number(name: str, key: str, raw: str) -> float:
    try:
        return int(raw) if raw.lstrip("+-").isdigit() else float(raw)
    except ValueError:
        raise DetectorSpecError(
            f"detector {name!r}: parameter {key}={raw!r} is not a number "
            f"(specs look like '{name}:{key}=1.5')"
        ) from None


def parse_spec(spec: str) -> Tuple[str, Dict[str, float]]:
    """Split ``"name:k=v,..."`` into ``(name, params)``.

    Raises :class:`DetectorSpecError` with an actionable message for
    unknown names, unknown parameters, and malformed assignments.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise DetectorSpecError(
            "empty detector spec; expected e.g. 'window' or 'cusum:h=2.0' "
            f"(registered: {', '.join(registered_detectors())})"
        )
    name, _, tail = spec.strip().partition(":")
    name = name.strip()
    entry = _REGISTRY.get(name)
    if entry is None:
        raise DetectorSpecError(
            f"unknown detector {name!r}; registered detectors: "
            f"{', '.join(registered_detectors())}"
        )
    params: Dict[str, float] = {}
    if tail.strip():
        for item in tail.split(","):
            key, eq, raw = item.partition("=")
            key = key.strip()
            raw = raw.strip()
            if not eq or not key or not raw:
                raise DetectorSpecError(
                    f"detector {name!r}: malformed parameter {item.strip()!r}; "
                    f"expected 'key=value' pairs separated by commas, e.g. "
                    f"'{name}:{entry.params[0]}=1'"
                )
            if key not in entry.params:
                raise DetectorSpecError(
                    f"detector {name!r} has no parameter {key!r}; accepted "
                    f"parameters: {', '.join(entry.params)}"
                )
            if key in params:
                raise DetectorSpecError(
                    f"detector {name!r}: parameter {key!r} given twice"
                )
            params[key] = _parse_number(name, key, raw)
    return name, params


def make_detector(spec: str, config: ProtocolConfig) -> Detector:
    """Build one detector instance from a spec string.

    ``config`` supplies defaults the spec does not override (the
    paper's W/THRESH for ``window``, ``cw_min`` scaling for the rest).
    Invalid parameter *values* (e.g. ``window:W=0``) surface as
    :class:`DetectorSpecError` too, citing the offending spec.
    """
    name, params = parse_spec(spec)
    try:
        return _REGISTRY[name].builder(config, **params)
    except ValueError as exc:
        raise DetectorSpecError(
            f"detector spec {spec!r} has an invalid value: {exc}"
        ) from None


def detector_factory(
    spec: str, config: ProtocolConfig
) -> Callable[[], Detector]:
    """A zero-argument factory for per-sender detector instances.

    The spec is parsed once, eagerly, so a bad string fails at
    configuration time rather than on first packet reception.
    """
    parse_spec(spec)  # validate now; build later
    def factory() -> Detector:
        return make_detector(spec, config)
    factory.spec = spec  # type: ignore[attr-defined]
    return factory


# ----------------------------------------------------------------------
# Built-in detector families
# ----------------------------------------------------------------------
def _build_window(config: ProtocolConfig, **params: float) -> WindowDetector:
    window = int(params.get("W", config.window))
    thresh = params.get("thresh", config.thresh)
    return WindowDetector(window=window, thresh=thresh)


def _build_cusum(config: ProtocolConfig, **params: float) -> CusumDetector:
    return CusumDetector(
        h=params.get("h", 2.0),
        k=params.get("k", 0.25),
        norm=params.get("norm", float(config.cw_min)),
    )


def _build_estimator(
    config: ProtocolConfig, **params: float
) -> CwminEstimatorDetector:
    return CwminEstimatorDetector(
        fraction=params.get("fraction", 0.5),
        min_samples=int(params.get("min_samples", 8)),
        window=int(params.get("window", 64)),
        cw_min=params.get("cw_min", float(config.cw_min)),
    )


register(
    "window", _build_window, ("W", "thresh"),
    "the paper's W/THRESH windowed-sum diagnosis (Section 4.3)",
)
register(
    "cusum", _build_cusum, ("h", "k", "norm"),
    "one-sided CUSUM on normalized backoff deficit (Cao et al.)",
)
register(
    "estimator", _build_estimator,
    ("fraction", "min_samples", "window", "cw_min"),
    "effective-CWmin estimate vs assigned value (Yazdani-Abyaneh & Krunz)",
)
