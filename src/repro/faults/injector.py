"""The runtime that drives a :class:`FaultProfile` during a simulation.

One :class:`FaultInjector` is built per run (by
:func:`repro.experiments.scenarios.build_scenario`) and wired in three
places:

* the medium's ``fault_hooks`` — :meth:`intercept` is consulted for
  every frame that *would* decode and may turn it into a silent drop
  or a corruption;
* the kernel — jamming bursts are scheduled as a Poisson process and
  call :meth:`~repro.phy.medium.Medium.begin_jam`;
* the MACs — crash/restart schedules call
  :meth:`~repro.mac.dcf.DcfMac.crash` / ``restart``.

Each model draws from its own named stream of the run's
:class:`~repro.sim.rng.RngRegistry` (``faults/frame_loss``,
``faults/corruption``, ``faults/jamming``), so fault randomness never
perturbs the medium's or any MAC's stream: two runs with the same
``(scenario, seed)`` and the same profile are bit-identical, and the
*set* of active models only changes draws within fault streams.

:meth:`summary` exposes lifetime counters (frames dropped/corrupted,
jam bursts and airtime, crashes/restarts) which
:class:`~repro.experiments.scenarios.RunResult` carries for reporting.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

from repro.faults.models import FaultProfile, FrameLossFault
from repro.sim.rng import RngRegistry


class FaultInjector:
    """Seeded driver of one run's fault profile.

    Parameters
    ----------
    sim:
        The event kernel.
    registry:
        The run's RNG registry; fault streams are derived lazily so an
        all-quiet model family costs no stream creation.
    profile:
        The fault configuration.  Callers should skip building an
        injector entirely when ``profile.is_noop()``.
    """

    def __init__(self, sim, registry: RngRegistry, profile: FaultProfile):
        self.sim = sim
        self.profile = profile
        self._loss_rng = (
            registry.stream("faults/frame_loss") if profile.frame_loss else None
        )
        self._corrupt_rng = (
            registry.stream("faults/corruption")
            if profile.frame_corruption
            else None
        )
        self._jam_rng = (
            registry.stream("faults/jamming") if profile.jamming else None
        )
        #: Remaining burst lengths: (model family, fault idx, src, dst).
        self._bursts: Dict[Tuple[str, int, int, int], int] = {}
        #: Lifetime counters (observability / RunResult.faults_injected).
        self.frames_dropped = 0
        self.frames_corrupted = 0
        self.jam_bursts = 0
        self.jam_airtime_us = 0
        self.crashes = 0
        self.restarts = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def install(self, medium, macs: Dict[int, object]) -> None:
        """Attach to the medium and schedule jam/crash timelines.

        ``macs`` maps node id to MAC instance (for crash schedules).
        """
        if self.profile.frame_loss or self.profile.frame_corruption:
            medium.fault_hooks = self
        for fault in self.profile.jamming:
            if fault.bursts_per_s > 0.0:
                self._schedule_next_jam(medium, fault)
        for fault in self.profile.node_crashes:
            mac = macs.get(fault.node)
            if mac is None:
                raise ValueError(
                    f"crash schedule targets unknown node {fault.node}"
                )
            self.sim.schedule_at(
                fault.crash_at_us, lambda m=mac: self._crash(m)
            )
            if fault.restart_at_us is not None:
                self.sim.schedule_at(
                    fault.restart_at_us, lambda m=mac: self._restart(m)
                )

    def _crash(self, mac) -> None:
        self.crashes += 1
        mac.crash()

    def _restart(self, mac) -> None:
        self.restarts += 1
        mac.restart()

    # ------------------------------------------------------------------
    # Frame-level faults (medium hook)
    # ------------------------------------------------------------------
    def intercept(self, tx, listener_id: int) -> Optional[str]:
        """Fate of a decodable frame at ``listener_id``.

        Returns ``"drop"`` (silent loss), ``"corrupt"`` (sensed but
        undecodable, EIFS at the listener) or ``None`` (deliver).
        Loss is evaluated before corruption, so overlapping models
        compose as loss-first.
        """
        kind = getattr(getattr(tx.frame, "kind", None), "value", "?")
        if self._matches(
            "loss", self.profile.frame_loss, self._loss_rng,
            kind, tx.src, listener_id,
        ):
            self.frames_dropped += 1
            return "drop"
        if self._matches(
            "corrupt", self.profile.frame_corruption, self._corrupt_rng,
            kind, tx.src, listener_id,
        ):
            self.frames_corrupted += 1
            return "corrupt"
        return None

    def _matches(
        self,
        family: str,
        faults: Sequence[FrameLossFault],
        rng,
        kind: str,
        src: int,
        dst: int,
    ) -> bool:
        for index, fault in enumerate(faults):
            if fault.frame_kinds and kind not in fault.frame_kinds:
                continue
            if fault.links and (src, dst) not in fault.links:
                continue
            key = (family, index, src, dst)
            remaining = self._bursts.get(key, 0)
            if remaining > 0:
                self._bursts[key] = remaining - 1
                return True
            if fault.rate <= 0.0:
                continue
            if fault.rate >= 1.0 or rng.random() < fault.rate:
                if fault.burst_mean > 1.0:
                    self._bursts[key] = _geometric_extra(
                        rng, fault.burst_mean
                    )
                return True
        return False

    # ------------------------------------------------------------------
    # Jamming
    # ------------------------------------------------------------------
    def _schedule_next_jam(self, medium, fault) -> None:
        gap_us = max(
            1, round(self._jam_rng.expovariate(fault.bursts_per_s) * 1e6)
        )
        self.sim.schedule(gap_us, lambda: self._start_jam(medium, fault))

    def _start_jam(self, medium, fault) -> None:
        duration = max(
            1, round(self._jam_rng.expovariate(1.0 / fault.mean_burst_us))
        )
        self.jam_bursts += 1
        self.jam_airtime_us += duration
        medium.begin_jam(duration)
        self._schedule_next_jam(medium, fault)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Nonzero lifetime counters, for ``RunResult.faults_injected``."""
        counters = {
            "frames_dropped": self.frames_dropped,
            "frames_corrupted": self.frames_corrupted,
            "jam_bursts": self.jam_bursts,
            "jam_airtime_us": self.jam_airtime_us,
            "crashes": self.crashes,
            "restarts": self.restarts,
        }
        return {name: value for name, value in counters.items() if value}


def _geometric_extra(rng, burst_mean: float) -> int:
    """Extra frames in a burst whose *total* mean length is burst_mean.

    The first frame is already lost; the continuation count is
    geometric with success probability ``1/burst_mean``.
    """
    p_stop = 1.0 / burst_mean
    u = rng.random()
    if u <= 0.0:
        return 0
    return int(math.log(u) / math.log(1.0 - p_stop))


__all__ = ["FaultInjector"]
