"""Fault model configuration records and the CLI profile parser.

Every record is a frozen dataclass of primitives and tuples, so a
:class:`FaultProfile` embedded in a ``ScenarioConfig`` has a stable
``repr`` and canonical form — faulted runs are cacheable and their
fingerprints change whenever any fault parameter changes.

Frame-level faults select frames by *kind* (the lowercase
:class:`~repro.mac.frames.FrameKind` values ``"rts" / "cts" / "data" /
"ack"``; empty means every kind) and by *link* (``(src, listener)``
pairs; empty means every link).  Loss and corruption differ in what
the victim perceives: a **lost** frame vanishes silently (the listener
never knows it existed — the semantics of a reception falling below
threshold), while a **corrupted** frame is sensed but undecodable and
therefore triggers the listener's EIFS deference, exactly like a
collision-damaged frame.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

#: Frame kinds a frame-level fault may target.
FRAME_KINDS = ("rts", "cts", "data", "ack")


@dataclass(frozen=True)
class FrameLossFault:
    """Silently drop decodable frames at the listener.

    Attributes
    ----------
    rate:
        Per-frame drop probability in [0, 1].
    frame_kinds:
        Targeted kinds (``"ack"`` etc.); empty tuple = all kinds.
    links:
        Targeted ``(src, listener)`` pairs; empty tuple = all links.
    burst_mean:
        Mean burst length.  1.0 drops frames independently; larger
        values make each triggered drop extend geometrically over the
        following matching frames on the same link (mean total burst
        length ``burst_mean``), modelling fading dips that outlive a
        single frame.
    """

    rate: float
    frame_kinds: Tuple[str, ...] = ()
    links: Tuple[Tuple[int, int], ...] = ()
    burst_mean: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.burst_mean < 1.0:
            raise ValueError("burst_mean must be >= 1")
        for kind in self.frame_kinds:
            if kind not in FRAME_KINDS:
                raise ValueError(
                    f"unknown frame kind {kind!r}; expected one of {FRAME_KINDS}"
                )


@dataclass(frozen=True)
class FrameCorruptionFault(FrameLossFault):
    """Corrupt decodable frames: sensed but undecodable (EIFS path)."""


@dataclass(frozen=True)
class JammingFault:
    """Poisson noise bursts that blanket the whole medium.

    While a burst is active every station senses a busy channel
    (freezing backoff counters and idle-slot counters) and every frame
    overlapping the burst at any point fails to decode.

    Attributes
    ----------
    bursts_per_s:
        Poisson arrival rate of bursts (per simulated second).
    mean_burst_us:
        Mean burst duration (exponential, floored at 1 us).
    """

    bursts_per_s: float
    mean_burst_us: int

    def __post_init__(self):
        if self.bursts_per_s < 0.0:
            raise ValueError("bursts_per_s must be >= 0")
        if self.mean_burst_us < 1:
            raise ValueError("mean_burst_us must be >= 1")


@dataclass(frozen=True)
class NodeCrashFault:
    """Crash (and optionally restart) one node's MAC.

    At ``crash_at_us`` the node loses all volatile MAC state: the
    in-flight exchange, pending timeouts, its NAV, and its backoff
    countdown.  At ``restart_at_us`` (if given) it rejoins with a
    fresh DIFS deference and resumes draining its traffic source.
    A frame the node had already put on the air finishes transmitting
    (the model's granularity is one frame).
    """

    node: int
    crash_at_us: int
    restart_at_us: Optional[int] = None

    def __post_init__(self):
        if self.crash_at_us < 0:
            raise ValueError("crash_at_us must be >= 0")
        if self.restart_at_us is not None and self.restart_at_us <= self.crash_at_us:
            raise ValueError("restart_at_us must be after crash_at_us")


@dataclass(frozen=True)
class ClockDriftFault:
    """Slot-clock drift on one node's MAC timing.

    The node's slot duration is scaled by ``1 + drift_ppm / 1e6`` and
    rounded to the kernel's integer-microsecond clock, so with the
    standard 20 us slot only drifts of |ppm| >= 25000 (2.5%) change
    behaviour; the rounding is deliberate — it keeps the kernel's
    integer-time determinism.  A fast clock (negative ppm shortens the
    slot) makes an *honest* node count down quicker than the receiver
    expects, probing the paper's misdiagnosis margin.
    """

    node: int
    drift_ppm: float

    def __post_init__(self):
        if self.drift_ppm <= -1_000_000:
            raise ValueError("drift_ppm must be > -1e6 (slot must stay positive)")


@dataclass(frozen=True)
class FaultProfile:
    """The full fault configuration of one run (all models optional)."""

    frame_loss: Tuple[FrameLossFault, ...] = ()
    frame_corruption: Tuple[FrameCorruptionFault, ...] = ()
    jamming: Tuple[JammingFault, ...] = ()
    node_crashes: Tuple[NodeCrashFault, ...] = ()
    clock_drifts: Tuple[ClockDriftFault, ...] = ()

    def is_noop(self) -> bool:
        """True when no model can ever fire (rate-0 entries included).

        A no-op profile is treated exactly like ``faults=None``: no
        injector is built, no fault RNG stream is created, and the run
        is bit-identical to an unfaulted one.
        """
        return (
            all(f.rate == 0.0 for f in self.frame_loss)
            and all(f.rate == 0.0 for f in self.frame_corruption)
            and all(j.bursts_per_s == 0.0 for j in self.jamming)
            and not self.node_crashes
            and all(
                _drifted_slot_us(d, slot_us=20) == 20 for d in self.clock_drifts
            )
        )


def _drifted_slot_us(drift: ClockDriftFault, slot_us: int) -> int:
    """Integer slot duration under ``drift`` (used by is_noop and MAC)."""
    return max(1, round(slot_us * (1.0 + drift.drift_ppm / 1e6)))


# ----------------------------------------------------------------------
# CLI profile spec parser
# ----------------------------------------------------------------------
_LOSS_KEYS = {f"{k}-loss": (k,) for k in FRAME_KINDS} | {"loss": ()}
_CORRUPT_KEYS = {f"{k}-corrupt": (k,) for k in FRAME_KINDS} | {"corrupt": ()}


def parse_profile(spec: str) -> FaultProfile:
    """Build a :class:`FaultProfile` from a compact comma-separated spec.

    Grammar (whitespace-insensitive; all times in *seconds* except the
    jam burst, which is in microseconds)::

        ack-loss=RATE[@BURST]     drop ACKs with prob RATE (mean burst BURST)
        cts-loss= / rts-loss= / data-loss= / loss=      other kinds / all
        ack-corrupt=RATE[@BURST]  corrupt instead of drop (EIFS path)
        jam=BURSTS_PER_S:MEAN_US  Poisson jamming bursts
        crash=NODE@T1[-T2]        crash node at T1 s, restart at T2 s
        drift=NODE:PPM            slot-clock drift in ppm

    Example: ``"ack-loss=0.3@4,jam=2:5000,crash=3@1-2.5,drift=5:50000"``.
    """
    profile = FaultProfile()
    for raw in spec.split(","):
        token = raw.strip()
        if not token:
            continue
        if "=" not in token:
            raise ValueError(f"malformed fault token {token!r} (expected key=value)")
        key, _, value = token.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if key in _LOSS_KEYS:
            fault = _parse_frame_fault(FrameLossFault, _LOSS_KEYS[key], value)
            profile = replace(profile, frame_loss=profile.frame_loss + (fault,))
        elif key in _CORRUPT_KEYS:
            fault = _parse_frame_fault(
                FrameCorruptionFault, _CORRUPT_KEYS[key], value
            )
            profile = replace(
                profile, frame_corruption=profile.frame_corruption + (fault,)
            )
        elif key == "jam":
            rate_s, _, mean_us = value.partition(":")
            if not mean_us:
                raise ValueError(
                    f"jam spec {value!r} must be BURSTS_PER_S:MEAN_US"
                )
            fault = JammingFault(
                bursts_per_s=float(rate_s), mean_burst_us=int(mean_us)
            )
            profile = replace(profile, jamming=profile.jamming + (fault,))
        elif key == "crash":
            node_s, _, window = value.partition("@")
            if not window:
                raise ValueError(f"crash spec {value!r} must be NODE@T1[-T2]")
            t1_s, _, t2_s = window.partition("-")
            fault = NodeCrashFault(
                node=int(node_s),
                crash_at_us=int(float(t1_s) * 1_000_000),
                restart_at_us=int(float(t2_s) * 1_000_000) if t2_s else None,
            )
            profile = replace(
                profile, node_crashes=profile.node_crashes + (fault,)
            )
        elif key == "drift":
            node_s, _, ppm = value.partition(":")
            if not ppm:
                raise ValueError(f"drift spec {value!r} must be NODE:PPM")
            fault = ClockDriftFault(node=int(node_s), drift_ppm=float(ppm))
            profile = replace(
                profile, clock_drifts=profile.clock_drifts + (fault,)
            )
        else:
            raise ValueError(f"unknown fault key {key!r} in token {token!r}")
    return profile


__all__ = [
    "FRAME_KINDS",
    "ClockDriftFault",
    "FaultProfile",
    "FrameCorruptionFault",
    "FrameLossFault",
    "JammingFault",
    "NodeCrashFault",
    "parse_profile",
]


def _parse_frame_fault(cls, kinds: Tuple[str, ...], value: str):
    rate_s, _, burst_s = value.partition("@")
    return cls(
        rate=float(rate_s),
        frame_kinds=kinds,
        burst_mean=float(burst_s) if burst_s else 1.0,
    )
