"""Deterministic, seeded fault injection for the simulator.

The paper's detection/correction/diagnosis schemes are explicitly
stressed by imperfect channels: a lost CTS/ACK silently discards the
assigned backoff it carries (Section 4.2's hardest case), noise bursts
corrupt the receiver's idle-slot estimate, and nodes that crash or
whose slot clocks drift look — to the receiver — exactly like
misbehaving senders.  The shadowing medium produces such faults only
implicitly; this package makes them *first-class and controllable*:

* :class:`FrameLossFault` / :class:`FrameCorruptionFault` — per-link
  loss/corruption (optionally bursty) targetable at specific frame
  kinds, e.g. "drop 20% of ACKs toward node 3";
* :class:`JammingFault` — Poisson noise bursts at the medium that
  raise carrier everywhere and destroy overlapping frames;
* :class:`NodeCrashFault` — crash/restart schedules for a node's MAC;
* :class:`ClockDriftFault` — slot-clock drift on one node's timing.

All models are bundled in a :class:`FaultProfile` (a frozen, hashable
config that rides inside ``ScenarioConfig`` and therefore participates
in run-cache fingerprints) and driven by a :class:`FaultInjector`
wired up by :func:`repro.experiments.scenarios.build_scenario`.

Determinism contract: every fault model draws from its own *named* RNG
stream (``faults/frame_loss``, ``faults/corruption``,
``faults/jamming``), so (a) a faulted run is exactly reproducible from
``(scenario, seed)`` and (b) with faults disabled no fault stream is
ever created or drawn — all existing results stay bit-identical.

:func:`parse_profile` builds a profile from a compact CLI spec, e.g.
``python -m repro run --faults "ack-loss=0.3@4,jam=2:5000,crash=3@1-2"``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.models import (
    ClockDriftFault,
    FaultProfile,
    FrameCorruptionFault,
    FrameLossFault,
    JammingFault,
    NodeCrashFault,
    parse_profile,
)

__all__ = [
    "ClockDriftFault",
    "FaultInjector",
    "FaultProfile",
    "FrameCorruptionFault",
    "FrameLossFault",
    "JammingFault",
    "NodeCrashFault",
    "parse_profile",
]
