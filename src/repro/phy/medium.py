"""Shared wireless medium with shadowing-derived probabilistic links.

The medium tracks every in-flight transmission and tells each
registered listener (a MAC instance) how the channel looks *from its
own position* — the whole point of the paper's evaluation is that the
sender's and receiver's channel views diverge.

For a listener L and a transmission from S, the link is classified by
its carrier-sense probability (:meth:`LinkProbabilities.classify`):

* ``strong``   — L deterministically senses the transmission.  The
  medium raises ``on_channel_busy`` / ``on_channel_idle`` edges, which
  freeze backoff timers and idle-slot counters.
* ``marginal`` — L senses each *slot* of the transmission
  independently with probability ``p``.  The medium only reports that
  the marginal set changed; per-slot sampling is done lazily by the
  consumers (geometric skips in the backoff timer, binomial counts in
  the idle-slot counter) so no per-slot events exist.
* ``negligible`` — ignored entirely.

A node's own transmission is "strong" for itself, which both freezes
its idle counter and models half-duplex deafness.

Frame delivery happens at transmission end: the frame is decoded by L
when (a) the shadowing draw clears the reception threshold, (b) L was
not transmitting during any overlap, and (c) the frame *captures* over
every overlapping transmission — survival against interferer I is a
Bernoulli with probability ``Phi((gain_S - gain_I - capture_db) /
(sigma*sqrt(2)))``, the probability that the power ratio of two
shadowed signals exceeds the capture threshold.  ns-2 (the paper's
substrate) uses the same 10 dB capture rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

from repro.phy.constants import PhyTimings
from repro.phy.propagation import LinkProbabilities, ShadowingModel, distance, normal_cdf

#: Capture threshold (dB): a frame survives interference when its
#: received power exceeds the interferer's by at least this much.
CAPTURE_THRESHOLD_DB = 10.0


class MediumListener(Protocol):
    """Interface a MAC must implement to attach to the medium."""

    node_id: int

    def on_channel_busy(self) -> None:
        """A strongly-sensed transmission began (count 0 -> 1)."""

    def on_channel_idle(self) -> None:
        """The last strongly-sensed transmission ended (count 1 -> 0)."""

    def on_marginal_change(self) -> None:
        """The set of marginally-sensed transmissions changed."""

    def on_frame(self, frame: object) -> None:
        """A frame was successfully decoded (any destination)."""

    def on_frame_corrupted(self) -> None:
        """A sensed frame failed to decode (triggers EIFS deference)."""


@dataclass
class Transmission:
    """One in-flight (or completed) frame on the air."""

    src: int
    frame: object
    start: int
    end: int
    #: Transmissions whose airtime overlapped this one at any point.
    overlaps: List["Transmission"] = field(default_factory=list)
    #: True when a jamming burst overlapped the airtime (decode fails).
    jammed: bool = False
    #: The source's listener partition (see ``Medium._source_view``),
    #: frozen at transmission start so that busy-count bookkeeping
    #: stays balanced even if node positions change mid-flight
    #: (mobility support).  ``(version, notify, deliver)``.
    view: Optional[tuple] = None


@dataclass
class _ListenerState:
    """Per-listener channel bookkeeping."""

    listener: MediumListener
    position: Tuple[float, float]
    strong_count: int = 0
    #: Active marginally-sensed transmissions: id(tx) -> p_sense.
    marginal: Dict[int, float] = field(default_factory=dict)


class Medium:
    """The shared channel; see module docstring for the model.

    Parameters
    ----------
    sim:
        The event kernel (supplies the clock and scheduling).
    model:
        Shadowing propagation model (paper calibration by default).
    rng:
        Random stream for shadowing draws (reception, capture and the
        consumers' per-slot sensing all derive from this registry's
        streams).
    timings:
        PHY timing bundle (for airtime computation by callers).
    """

    def __init__(self, sim, model: Optional[ShadowingModel] = None,
                 rng=None, timings: Optional[PhyTimings] = None):
        self.sim = sim
        self.model = model if model is not None else ShadowingModel()
        self.timings = timings if timings is not None else PhyTimings()
        if rng is None:
            raise ValueError("Medium requires a random stream (rng)")
        self.rng = rng
        self._states: Dict[int, _ListenerState] = {}
        self._links: Dict[Tuple[int, int], LinkProbabilities] = {}
        self._active: List[Transmission] = []
        #: Per-source listener partitions (classification + delivery
        #: candidates), precomputed once per topology version instead
        #: of re-classifying every listener on every transmission.
        self._src_views: Dict[int, tuple] = {}
        #: Capture probabilities keyed (src, interferer, listener):
        #: pure geometry, so cacheable until a node moves.
        self._capture_cache: Dict[Tuple[int, int, int], float] = {}
        #: Batch fast path (:mod:`repro.sim.batch`): when set to a
        #: :class:`~repro.sim.vecrng.VectorStreamPool`, marginal-edge
        #: idle-slot draws are deferred per transmission edge and
        #: sampled in one vectorized pool operation.  Requires every
        #: listener to implement ``on_marginal_change_batch`` (the real
        #: MACs do) and the ``idle/*`` streams to live in this pool.
        self.marginal_batch_pool = None
        #: Bumped whenever node geometry changes (register / move); a
        #: transmission whose frozen view predates the current version
        #: falls back to live link lookups for delivery.
        self._links_version = 0
        #: Optional structured event log (repro.sim.trace.TraceLog);
        #: None disables tracing entirely.
        self.trace = None
        #: Optional fault hook (repro.faults.FaultInjector); consulted
        #: in _deliver for frames that would otherwise decode.  None
        #: (the default) costs one attribute check per delivery.
        self.fault_hooks = None
        #: Nesting depth of active jamming bursts.
        self._jam_depth = 0
        #: Lifetime counters (observability / tests).
        self.transmissions_started = 0
        self.frames_decoded = 0
        self.frames_corrupted = 0
        self.frames_fault_dropped = 0
        self.jam_bursts = 0

    # ------------------------------------------------------------------
    # Registration and link geometry
    # ------------------------------------------------------------------
    def register(self, listener: MediumListener, position: Tuple[float, float]) -> None:
        """Attach a listener at a fixed position."""
        if listener.node_id in self._states:
            raise ValueError(f"node {listener.node_id} already registered")
        self._states[listener.node_id] = _ListenerState(listener, position)
        self._invalidate_views()

    def _invalidate_views(self) -> None:
        """Drop geometry-derived caches (new node or node moved)."""
        self._links_version += 1
        self._src_views.clear()
        self._capture_cache.clear()

    def _source_view(self, src: int) -> tuple:
        """Frozen listener partition for transmissions from ``src``.

        Returns ``(version, notify, deliver)`` where ``notify`` is
        ``[(state, is_strong, p_sense), ...]`` over the strongly and
        marginally sensing listeners (the source itself is "strong" —
        half-duplex deafness) and ``deliver`` is
        ``[(node_id, state, link), ...]`` over listeners with a
        non-negligible receive or sense probability.  Both preserve
        registration order, so callbacks fire exactly as they would
        from a per-listener classification sweep.
        """
        view = self._src_views.get(src)
        if view is None:
            eps = LinkProbabilities.EPS
            notify = []
            deliver = []
            for node_id, state in self._states.items():
                if node_id == src:
                    notify.append((state, True, 0.0))
                    continue
                link = self.link(src, node_id)
                cls = link.classify()
                if cls == "strong":
                    notify.append((state, True, 0.0))
                elif cls == "marginal":
                    notify.append((state, False, link.sense))
                if link.receive > eps or link.sense > eps:
                    deliver.append((node_id, state, link))
            view = (self._links_version, notify, deliver)
            self._src_views[src] = view
        return view

    def link(self, src: int, dst: int) -> LinkProbabilities:
        """Cached link probabilities between two registered nodes."""
        key = (src, dst)
        cached = self._links.get(key)
        if cached is None:
            if src == dst:
                cached = LinkProbabilities(distance_m=0.0, receive=1.0, sense=1.0)
            else:
                d = distance(self._states[src].position, self._states[dst].position)
                cached = self.model.link(max(d, 1e-6))
            self._links[key] = cached
        return cached

    def position_of(self, node_id: int) -> Tuple[float, float]:
        """Registered position of a node."""
        return self._states[node_id].position

    def update_position(self, node_id: int, position: Tuple[float, float]) -> None:
        """Move a node (mobility support).

        Link probabilities involving the node are recomputed for
        subsequent transmissions; transmissions already on the air
        keep the sensing classification frozen at their start (their
        busy-count bookkeeping must stay balanced), which at mobility
        speeds (< a few m per frame) is exact to well under a meter.
        """
        state = self._states.get(node_id)
        if state is None:
            raise KeyError(f"node {node_id} is not registered")
        state.position = position
        stale = [key for key in self._links if node_id in key]
        for key in stale:
            del self._links[key]
        self._invalidate_views()

    # ------------------------------------------------------------------
    # Channel-view queries (used by backoff timers / idle counters)
    # ------------------------------------------------------------------
    def strong_busy(self, node_id: int) -> bool:
        """Whether the node currently senses a strong transmission."""
        return self._states[node_id].strong_count > 0

    def marginal_busy_probability(self, node_id: int) -> float:
        """Per-slot busy probability from marginally-sensed transmissions.

        With independent shadowing per transmission per slot, the slot
        is busy unless *every* marginal transmission goes unsensed:
        ``1 - prod(1 - p_i)``.
        """
        product = 1.0
        for p in self._states[node_id].marginal.values():
            product *= 1.0 - p
        return 1.0 - product

    # ------------------------------------------------------------------
    # Transmission lifecycle
    # ------------------------------------------------------------------
    def start_transmission(self, src: int, frame, airtime_us: int) -> Transmission:
        """Put a frame on the air; returns its transmission record."""
        if airtime_us <= 0:
            raise ValueError("airtime must be positive")
        now = self.sim.now
        tx = Transmission(src=src, frame=frame, start=now, end=now + airtime_us,
                          jammed=self._jam_depth > 0)
        for active in self._active:
            active.overlaps.append(tx)
            tx.overlaps.append(active)
        self._active.append(tx)
        self.transmissions_started += 1
        if self.trace is not None:
            try:  # direct access: frames are Frame in every real run
                self.trace.record(
                    now, "tx_start", src,
                    frame_kind=frame.kind.value, dst=frame.dst, end=tx.end,
                    duration_us=frame.duration_us, seq=frame.seq,
                    attempt=frame.attempt,
                    assigned_backoff=frame.assigned_backoff,
                )
            except AttributeError:  # duck-typed test stand-ins
                self.trace.record(
                    now, "tx_start", src,
                    frame_kind=getattr(getattr(frame, "kind", None),
                                       "value", "?"),
                    dst=getattr(frame, "dst", None),
                    end=tx.end,
                    duration_us=getattr(frame, "duration_us", 0),
                    seq=getattr(frame, "seq", 0),
                    attempt=getattr(frame, "attempt", 0),
                    assigned_backoff=getattr(frame, "assigned_backoff", -1),
                )
        self._notify_start(tx)
        self.sim.call_later(airtime_us, lambda: self._finish_transmission(tx))
        return tx

    def _notify_start(self, tx: Transmission) -> None:
        tx.view = view = self._source_view(tx.src)
        marginal_key = id(tx)
        # ``fast`` collects deferred (counter, n, p) binomial deficits
        # for one vectorized draw after the listener sweep; everything
        # else (bookkeeping, timer resegmentation) happens per listener
        # in the exact scalar order, so event sequencing and per-stream
        # draw sequences are unchanged.
        fast = [] if self.marginal_batch_pool is not None else None
        for state, is_strong, p_sense in view[1]:
            if is_strong:
                state.strong_count += 1
                if state.strong_count == 1:
                    if fast is None:
                        state.listener.on_channel_busy()
                    else:
                        state.listener.on_channel_busy_batch(fast)
            elif fast is None:
                state.marginal[marginal_key] = p_sense
                state.listener.on_marginal_change()
            else:
                state.marginal[marginal_key] = p_sense
                state.listener.on_marginal_change_batch(fast)
        if fast:
            self._apply_marginal_deficits(fast)

    def _finish_transmission(self, tx: Transmission) -> None:
        self._active.remove(tx)
        # Deliver before raising idle edges: decode outcomes (and the
        # EIFS decision they imply) are known at frame end, and the
        # MAC's deference logic needs them when the channel goes idle.
        self._deliver(tx)
        marginal_key = id(tx)
        fast = [] if self.marginal_batch_pool is not None else None
        for state, is_strong, _ in tx.view[1]:
            if is_strong:
                state.strong_count -= 1
                if state.strong_count == 0:
                    state.listener.on_channel_idle()
            elif fast is None:
                state.marginal.pop(marginal_key, None)
                state.listener.on_marginal_change()
            else:
                state.marginal.pop(marginal_key, None)
                state.listener.on_marginal_change_batch(fast)
        if fast:
            self._apply_marginal_deficits(fast)

    def _apply_marginal_deficits(self, fast) -> None:
        """Resolve deferred idle-slot deficits in one pool operation."""
        deficits = self.marginal_batch_pool.bernoulli_deficits(
            [(counter.rng, n, p) for counter, n, p in fast]
        )
        for (counter, _, _), deficit in zip(fast, deficits):
            counter._slots += int(deficit)

    # ------------------------------------------------------------------
    # Jamming (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def begin_jam(self, duration_us: int) -> None:
        """Start a noise burst blanketing the whole medium.

        Every listener senses a busy channel for the burst's duration
        (strong busy edge on the first concurrent burst), and every
        frame whose airtime overlaps the burst at any point fails to
        decode.  Bursts may overlap; the channel goes idle again when
        the last one ends.
        """
        if duration_us <= 0:
            raise ValueError("jam duration must be positive")
        self.jam_bursts += 1
        self._jam_depth += 1
        for tx in self._active:
            tx.jammed = True
        if self._jam_depth == 1:
            if self.trace is not None:
                self.trace.record(self.sim.now, "jam_start", -1,
                                  duration_us=duration_us)
            for state in self._states.values():
                state.strong_count += 1
                if state.strong_count == 1:
                    state.listener.on_channel_busy()
        self.sim.schedule(duration_us, self._end_jam)

    def _end_jam(self) -> None:
        self._jam_depth -= 1
        if self._jam_depth == 0:
            if self.trace is not None:
                self.trace.record(self.sim.now, "jam_end", -1)
            for state in self._states.values():
                state.strong_count -= 1
                if state.strong_count == 0:
                    state.listener.on_channel_idle()

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------
    def _deliver(self, tx: Transmission) -> None:
        view = tx.view
        if view is not None and view[0] == self._links_version:
            candidates = view[2]
        else:
            # A node moved (or registered) while the frame was in
            # flight: classification stays frozen, but delivery uses
            # live link probabilities, exactly as the uncached sweep.
            eps = LinkProbabilities.EPS
            candidates = []
            for node_id, state in self._states.items():
                if node_id == tx.src:
                    continue
                link = self.link(tx.src, node_id)
                if link.receive <= eps and link.sense <= eps:
                    continue
                candidates.append((node_id, state, link))
        # Half-duplex: a node transmitting during any overlap (or
        # being the source of an overlapping frame) hears nothing.
        overlap_srcs = {o.src for o in tx.overlaps} if tx.overlaps else ()
        fault_hooks = self.fault_hooks
        rng_random = self.rng.random
        one_minus_eps = 1.0 - LinkProbabilities.EPS
        clean = not tx.jammed and not tx.overlaps
        for node_id, state, link in candidates:
            if node_id in overlap_srcs:
                continue
            if clean:
                # Inlined ``_attempt_decode`` for the dominant case
                # (no jam, no overlap): at most one receive draw.
                rcv = link.receive
                decoded = rcv >= one_minus_eps or rng_random() < rcv
            else:
                decoded = self._attempt_decode(tx, node_id, link)
            if decoded and fault_hooks is not None:
                fate = self.fault_hooks.intercept(tx, node_id)
                if fate == "drop":
                    # Silent loss: the listener never learns the frame
                    # existed (no EIFS, no corruption counter).
                    self.frames_fault_dropped += 1
                    if self.trace is not None:
                        self.trace.record(
                            self.sim.now, "fault_drop", node_id, src=tx.src
                        )
                    continue
                if fate == "corrupt":
                    decoded = False
            if decoded:
                self.frames_decoded += 1
                if self.trace is not None:
                    # Decodes are the hottest traced event, so the
                    # payload carries only what reception semantics
                    # need; header provenance (seq/attempt/assigned
                    # backoff) lives on the matching ``tx_start``.
                    frame = tx.frame
                    try:  # direct access: frames are Frame in real runs
                        self.trace.record(
                            self.sim.now, "decode", node_id,
                            src=tx.src,
                            # What the frame *claims* as its source —
                            # equals ``src`` except under address
                            # spoofing, and is what the listener's MAC
                            # reacts to.
                            frame_src=frame.src,
                            frame_kind=frame.kind.value,
                            dst=frame.dst,
                            duration_us=frame.duration_us,
                        )
                    except AttributeError:  # duck-typed test stand-ins
                        self.trace.record(
                            self.sim.now, "decode", node_id,
                            src=tx.src,
                            frame_src=getattr(frame, "src", tx.src),
                            frame_kind=getattr(getattr(frame, "kind", None),
                                               "value", "?"),
                            dst=getattr(frame, "dst", None),
                            duration_us=getattr(frame, "duration_us", 0),
                        )
                state.listener.on_frame(tx.frame)
            else:
                sensed = (
                    link.sense > 1.0 - LinkProbabilities.EPS
                    or self.rng.random() < link.sense
                )
                if sensed:
                    self.frames_corrupted += 1
                    if self.trace is not None:
                        self.trace.record(
                            self.sim.now, "corrupt", node_id, src=tx.src
                        )
                    state.listener.on_frame_corrupted()

    def _attempt_decode(self, tx: Transmission, node_id: int,
                        link: LinkProbabilities) -> bool:
        if tx.jammed:
            return False
        if link.receive < 1.0 - LinkProbabilities.EPS:
            if self.rng.random() >= link.receive:
                return False
        for interferer in tx.overlaps:
            if interferer.src == tx.src:
                continue
            if self.rng.random() >= self._capture_probability(
                tx.src, interferer.src, node_id
            ):
                return False
        return True

    def _capture_probability(self, src: int, interferer: int, at: int) -> float:
        """P(src's signal exceeds interferer's by the capture margin at node).

        Both signals carry independent shadowing, so their dB
        difference is Gaussian with std ``sigma*sqrt(2)`` around the
        difference of mean path gains.  Pure geometry, so the value is
        cached until a node moves.
        """
        key = (src, interferer, at)
        cached = self._capture_cache.get(key)
        if cached is not None:
            return cached
        d_src = max(distance(self._states[src].position, self._states[at].position), 1e-6)
        d_int = max(distance(self._states[interferer].position, self._states[at].position), 1e-6)
        mean_margin = (
            self.model.mean_path_gain_db(d_src)
            - self.model.mean_path_gain_db(d_int)
            - CAPTURE_THRESHOLD_DB
        )
        sigma = self.model.sigma_db * math.sqrt(2.0)
        if sigma == 0.0:
            probability = 1.0 if mean_margin >= 0.0 else 0.0
        else:
            probability = normal_cdf(mean_margin / sigma)
        self._capture_cache[key] = probability
        return probability

    @property
    def active_transmissions(self) -> int:
        """Number of frames currently on the air."""
        return len(self._active)
