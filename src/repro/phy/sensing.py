"""Idle-slot counting from one node's perspective.

The receiver-side quantity ``B_act`` in the paper is "the number of
idle slots observed on the channel during the interval between the
sending of an ACK by R and the reception of the next RTS from S".
For the comparison ``B_act < alpha * B_exp`` to be meaningful, the
receiver must count idle slots *the way a conforming sender's backoff
counter would*: slots are only eligible after a DIFS (or EIFS, after
a reception error) of deference following each busy period, partial
slots cut short by a busy edge do not count, and individual slots
"flickered" busy by a marginally-sensed transmission do not count.
Counting raw idle time instead would credit every sender with the
DIFS gaps of everyone else's exchanges (tens of slots per packet in a
saturated cell), burying misbehavior in noise — the natural ns-2
implementation hooks the MAC's own backoff-eligibility logic, and so
do we.

:class:`IdleSlotCounter` maintains a *cumulative* eligible-idle-slot
count so any interval's ``B_act`` is a difference of two snapshots.
Regimes (driven by the owning MAC from medium callbacks):

* strong-busy — no slots accrue; the slot clock realigns at the edge;
* deference   — after a busy period, counting starts ``ifs`` later;
* clean idle  — whole slots accrue every ``slot_us``;
* marginal    — each slot independently busy with the current
  combined probability ``p``; the busy count over an elapsed stretch
  is sampled lazily as a Binomial, so no per-slot events are needed.
"""

from __future__ import annotations

import random

from repro.sim.engine import SimulationError
from repro.sim.rng import binomial


class IdleSlotCounter:
    """Cumulative conforming-station idle-slot counter.

    Parameters
    ----------
    slot_us:
        Slot duration in microseconds.
    rng:
        Random stream for the lazy binomial sampling of marginal
        stretches.
    difs_us:
        Default deference after each busy period (also applied at
        time zero, matching a station's initial DIFS wait).
    start_time:
        Simulation time at which counting begins.
    """

    def __init__(
        self,
        slot_us: int,
        rng: random.Random,
        difs_us: int = 50,
        start_time: int = 0,
    ):
        if slot_us <= 0:
            raise ValueError("slot_us must be positive")
        self.slot_us = slot_us
        self.rng = rng
        self.difs_us = difs_us
        self._slots = 0
        self._strong = False
        self._marginal_p = 0.0
        #: Start of the next countable slot (>= any pending deference).
        self._cursor = start_time + difs_us
        #: Latest ``now`` ever observed; guards against a backwards
        #: clock (e.g. a drift-fault/resync interaction) silently
        #: rewinding the cursor and double-counting slots.
        self._last_now = start_time

    # ------------------------------------------------------------------
    # Regime transitions (advance first, then switch)
    # ------------------------------------------------------------------
    def set_strong(self, busy: bool, now: int, ifs_us: int | None = None) -> None:
        """Record a strong-busy edge at time ``now``.

        On the busy->idle edge, ``ifs_us`` is the deference to apply
        before slots become eligible again (DIFS by default; the MAC
        passes EIFS after a reception error).
        """
        self.advance(now)
        self._strong = busy
        if busy:
            # Partial slot progress is discarded; the clock realigns.
            self._cursor = now
        else:
            defer = ifs_us if ifs_us is not None else self.difs_us
            self._cursor = now + defer

    def set_marginal_probability(self, p: float, now: int) -> None:
        """Record a change of the combined marginal busy probability."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.advance(now)
        self._marginal_p = p

    def advance(self, now: int) -> None:
        """Count all complete eligible slots up to ``now``.

        Raises
        ------
        SimulationError
            If ``now`` precedes a previously observed time.  A
            backwards clock would rewind the slot cursor on the next
            strong edge and double-count (or negatively count) slots,
            so it is rejected loudly rather than sampled.
        """
        if now < self._last_now:
            raise SimulationError(
                f"IdleSlotCounter clock went backwards: advance to {now} "
                f"after observing {self._last_now}"
            )
        self._last_now = now
        if self._strong:
            self._cursor = max(self._cursor, now)
            return
        if now <= self._cursor:
            return
        whole = (now - self._cursor) // self.slot_us
        if whole <= 0:
            return
        n = int(whole)
        if self._marginal_p <= 0.0:
            idle = n
        elif self._marginal_p >= 1.0:
            idle = 0
        else:
            idle = n - binomial(self.rng, n, self._marginal_p)
        self._slots += idle
        self._cursor += n * self.slot_us

    def resync(self, now: int, ifs_us: int | None = None) -> None:
        """Re-enter counting after an outage (e.g. a node restart).

        The cumulative count is preserved; the node simply defers a
        fresh IFS (DIFS by default) from ``now`` before slots become
        eligible again, exactly as a station that just powered up.
        """
        self.advance(now)
        defer = ifs_us if ifs_us is not None else self.difs_us
        self._cursor = max(self._cursor, now + defer)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def idle_slots(self, now: int) -> int:
        """Cumulative eligible idle slots observed until ``now``."""
        self.advance(now)
        return self._slots

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        regime = "strong" if self._strong else (
            f"marginal(p={self._marginal_p:.3f})" if self._marginal_p else "idle"
        )
        return f"IdleSlotCounter(slots={self._slots}, regime={regime})"
