"""IEEE 802.11 (1999, DSSS PHY) timing and MAC constants.

Values follow the 2 Mbps DSSS configuration the paper simulates in
ns-2: slot time 20 us, SIFS 10 us, DIFS = SIFS + 2*slot = 50 us,
CWmin = 31, CWmax = 1023.  All durations are integer microseconds to
match the kernel clock (:mod:`repro.sim.engine`).

Frame sizes follow the 802.11 MAC header formats.  The reproduction's
modified protocol adds two small fields (assigned backoff in CTS/ACK
and the attempt number in RTS); we account for them explicitly so the
modified protocol pays its real header cost.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Duration of one backoff slot (microseconds).
SLOT_TIME_US = 20

#: Short interframe space (microseconds).
SIFS_US = 10

#: DCF interframe space: SIFS + 2 slots (microseconds).
DIFS_US = SIFS_US + 2 * SLOT_TIME_US

#: Minimum contention window (802.11 DSSS).
CW_MIN = 31

#: Maximum contention window (802.11 DSSS).
CW_MAX = 1023

#: Channel bit rate used throughout the paper's evaluation (bits/second).
CHANNEL_BIT_RATE = 2_000_000

#: PLCP preamble + header transmission time at 1 Mbps (long preamble).
PLCP_OVERHEAD_US = 192

#: MAC-level frame sizes in bytes (802.11-1999 frame formats).
RTS_SIZE_BYTES = 20
CTS_SIZE_BYTES = 14
ACK_SIZE_BYTES = 14
DATA_HEADER_BYTES = 28  # MAC header (24) + FCS (4)

#: Extra bytes the modified (CORRECT) protocol adds to carry the
#: assigned backoff (2 bytes in CTS and ACK) and the attempt number
#: (1 byte in RTS).
ASSIGNED_BACKOFF_FIELD_BYTES = 2
ATTEMPT_FIELD_BYTES = 1

#: Retry limits (802.11 short/long retry counts; the paper does not
#: override them, and with CWmax=1023 a retry cap keeps flows live).
SHORT_RETRY_LIMIT = 7
LONG_RETRY_LIMIT = 4


def transmission_time_us(payload_bytes: int, bit_rate: int = CHANNEL_BIT_RATE) -> int:
    """Airtime of a frame: PLCP overhead plus payload at ``bit_rate``.

    The result is rounded up to a whole microsecond so frames never end
    between kernel ticks.
    """
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be >= 0")
    bits = payload_bytes * 8
    body_us = -(-bits * 1_000_000 // bit_rate)  # ceil division
    return PLCP_OVERHEAD_US + int(body_us)


@dataclass(frozen=True)
class PhyTimings:
    """Bundle of PHY timings, overridable for what-if experiments.

    The defaults reproduce the paper's configuration; tests also use
    shrunken values to keep unit scenarios tiny.
    """

    slot_us: int = SLOT_TIME_US
    sifs_us: int = SIFS_US
    bit_rate: int = CHANNEL_BIT_RATE
    plcp_us: int = PLCP_OVERHEAD_US
    cw_min: int = CW_MIN
    cw_max: int = CW_MAX

    @property
    def difs_us(self) -> int:
        """DIFS = SIFS + 2 * slot, per the standard."""
        return self.sifs_us + 2 * self.slot_us

    @property
    def eifs_us(self) -> int:
        """EIFS = SIFS + ACK airtime + DIFS (used after corrupt frames)."""
        ack_us = self.frame_airtime_us(ACK_SIZE_BYTES)
        return self.sifs_us + ack_us + self.difs_us

    def frame_airtime_us(self, payload_bytes: int) -> int:
        """Airtime for ``payload_bytes`` at this configuration's rate."""
        bits = payload_bytes * 8
        body_us = -(-bits * 1_000_000 // self.bit_rate)
        return self.plcp_us + int(body_us)


#: Default timing bundle used by scenarios unless overridden.
DEFAULT_TIMINGS = PhyTimings()
