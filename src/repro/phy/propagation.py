"""Shadowing propagation model and its closed-form link probabilities.

The paper uses ns-2's *shadowing* model::

    [Pr(d) / Pr(d0)]_dB = -10 * beta * log10(d / d0) + X_dB

with path-loss exponent ``beta`` (2 in the paper, free space), and
``X_dB ~ N(0, sigma_dB^2)`` with ``sigma_dB = 1``.  Reception and
carrier-sense use fixed power thresholds chosen so that

* a transmission is *received* with 50% probability at 250 m, and
* a transmission is *sensed*   with 50% probability at 550 m.

Because the shadowing term is the only randomness, the event
"received power exceeds threshold T" has probability::

    P = Phi((Pr_mean_dB(d) - T_dB) / sigma_dB)

where ``Phi`` is the standard normal CDF.  Sampling ``X_dB`` per slot
and thresholding is therefore *exactly* a Bernoulli draw with this
probability, which is how :mod:`repro.phy.medium` samples the channel
at slot granularity (the paper's "modifications to the physical
carrier sensing to account for variations in channel conditions at the
granularity of a slot").

Calibration note: "50% at distance D" pins the threshold to the mean
received power at D (Phi(0) = 0.5), so thresholds are derived, not
free parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

#: Distance (meters) at which reception succeeds with probability 0.5.
RECEIVE_RANGE_M = 250.0

#: Distance (meters) at which carrier sense fires with probability 0.5.
CARRIER_SENSE_RANGE_M = 550.0


def normal_cdf(x: float) -> float:
    """Standard normal CDF via ``math.erf`` (no scipy dependency)."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def normal_quantile(p: float) -> float:
    """Inverse standard normal CDF (Acklam's rational approximation).

    Accurate to ~1e-9 over (0, 1); used by the adaptive-threshold
    extension to convert a target misdiagnosis rate into a slot margin.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)


@dataclass(frozen=True)
class ShadowingModel:
    """Log-distance path loss with Gaussian shadowing.

    Parameters
    ----------
    path_loss_exponent:
        ``beta`` in the model; 2.0 reproduces the paper (free space).
    sigma_db:
        Standard deviation of the shadowing term; 1.0 in the paper.
    receive_range_m / carrier_sense_range_m:
        Calibration distances at which reception / sensing succeed with
        probability 0.5, pinning the two thresholds.
    reference_distance_m:
        ``d0`` of the model.  Only ratios matter for the derived
        probabilities, so the default of 1 m is conventional.
    """

    path_loss_exponent: float = 2.0
    sigma_db: float = 1.0
    receive_range_m: float = RECEIVE_RANGE_M
    carrier_sense_range_m: float = CARRIER_SENSE_RANGE_M
    reference_distance_m: float = 1.0

    def mean_path_gain_db(self, distance_m: float) -> float:
        """Mean received power relative to the reference distance (dB)."""
        if distance_m <= 0.0:
            raise ValueError("distance must be positive")
        ratio = distance_m / self.reference_distance_m
        return -10.0 * self.path_loss_exponent * math.log10(ratio)

    # ------------------------------------------------------------------
    # Thresholds (derived from the 50% calibration points)
    # ------------------------------------------------------------------
    @property
    def receive_threshold_db(self) -> float:
        """Reception threshold: mean power at the 50% receive range."""
        return self.mean_path_gain_db(self.receive_range_m)

    @property
    def carrier_sense_threshold_db(self) -> float:
        """Carrier-sense threshold: mean power at the 50% sense range."""
        return self.mean_path_gain_db(self.carrier_sense_range_m)

    # ------------------------------------------------------------------
    # Link probabilities
    # ------------------------------------------------------------------
    def _threshold_probability(self, distance_m: float, threshold_db: float) -> float:
        margin = self.mean_path_gain_db(distance_m) - threshold_db
        if self.sigma_db == 0.0:
            return 1.0 if margin >= 0.0 else 0.0
        return normal_cdf(margin / self.sigma_db)

    def receive_probability(self, distance_m: float) -> float:
        """P(received power >= receive threshold) at ``distance_m``."""
        return self._threshold_probability(distance_m, self.receive_threshold_db)

    def sense_probability(self, distance_m: float) -> float:
        """P(received power >= carrier-sense threshold) at ``distance_m``."""
        return self._threshold_probability(distance_m, self.carrier_sense_threshold_db)

    def link(self, distance_m: float) -> "LinkProbabilities":
        """Bundle of both probabilities for a link of given length."""
        return LinkProbabilities(
            distance_m=distance_m,
            receive=self.receive_probability(distance_m),
            sense=self.sense_probability(distance_m),
        )


@dataclass(frozen=True)
class LinkProbabilities:
    """Per-link reception and carrier-sense probabilities.

    ``classify()`` buckets the sensing probability so the medium can
    take deterministic fast paths for links that are (numerically)
    always or never sensed.
    """

    distance_m: float
    receive: float
    sense: float

    #: Probabilities within EPS of 0/1 are treated as deterministic.
    EPS = 1e-9

    def classify(self) -> str:
        """Return ``"strong"``, ``"marginal"`` or ``"negligible"``."""
        if self.sense >= 1.0 - self.EPS:
            return "strong"
        if self.sense <= self.EPS:
            return "negligible"
        return "marginal"


def distance(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Euclidean distance between two (x, y) positions in meters."""
    return math.hypot(a[0] - b[0], a[1] - b[1])
