"""Physical layer: 802.11 timing, shadowing propagation, shared medium."""

from repro.phy.constants import (
    CW_MAX,
    CW_MIN,
    DEFAULT_TIMINGS,
    PhyTimings,
    transmission_time_us,
)
from repro.phy.medium import CAPTURE_THRESHOLD_DB, Medium, MediumListener, Transmission
from repro.phy.propagation import (
    LinkProbabilities,
    ShadowingModel,
    distance,
    normal_cdf,
    normal_quantile,
)
from repro.phy.sensing import IdleSlotCounter

__all__ = [
    "CW_MAX",
    "CW_MIN",
    "DEFAULT_TIMINGS",
    "PhyTimings",
    "transmission_time_us",
    "CAPTURE_THRESHOLD_DB",
    "Medium",
    "MediumListener",
    "Transmission",
    "LinkProbabilities",
    "ShadowingModel",
    "distance",
    "normal_cdf",
    "normal_quantile",
    "IdleSlotCounter",
]
