"""Third-party observation for collusion detection (§4.4).

"The proposed scheme also does not address collusion between a sender
and a receiver.  Collusion detection will require a third party
observer to monitor the behavior of both the sender and the receiver."

:class:`ObserverMac` is that third party: a passive node that
overhears the exchanges of a (sender, receiver) pair and re-runs the
receiver's own arithmetic from its own vantage point:

* the assignments travel in plaintext CTS/ACK fields, so the observer
  learns ``B_exp`` exactly as the receiver dictates it;
* the observer counts idle slots with its own conforming-station
  counter, yielding an independent ``B_act``;
* equation 1 then reveals *sender* deviations, and the absence of
  penalties in the receiver's subsequent assignments (assignments that
  stay within the honest ``[0, CWmin]`` band despite repeated
  deviations) reveals that the *receiver* is covering for the sender.

A pair is flagged as colluding when the observed sender stands
diagnosed by the observer's own W/THRESH window while the receiver's
assignments show no corrective response.

The observer's channel view differs from the receiver's (different
position, independent shadowing), so its evidence is statistical, like
everything else in the scheme — place it near the monitored pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.backoff_function import expected_backoff_sum
from repro.core.deviation import check_deviation
from repro.core.diagnosis import DiagnosisWindow
from repro.core.params import PAPER_CONFIG, ProtocolConfig
from repro.mac.dcf import DcfMac
from repro.mac.frames import Frame, FrameKind


@dataclass
class PairObservation:
    """Observer-side state for one (sender, receiver) pair."""

    sender: int
    receiver: int
    diagnosis: DiagnosisWindow
    #: Last assignment overheard in a CTS/ACK from receiver to sender.
    assignment: Optional[int] = None
    #: Observer's idle-count snapshot at the end of that CTS/ACK.
    reference_idle: Optional[int] = None
    #: First backoff stage expected next (1 after ACK, k+1 after CTS).
    next_first_stage: int = 1
    deviations: int = 0
    packets: int = 0
    #: Deviations that were followed by a non-penalised assignment.
    unpenalised_deviations: int = 0
    #: Pending flag: the last RTS deviated; check the next assignment.
    _await_penalty: bool = field(default=False, repr=False)


class ObserverMac(DcfMac):
    """A passive monitor overhearing other nodes' exchanges.

    Extra parameters
    ----------------
    watch:
        (sender, receiver) pairs to monitor; empty means every pair
        whose frames the observer decodes.
    config:
        Protocol parameters (alpha, W, THRESH) used for the observer's
        own independent judgement.
    collusion_threshold:
        Fraction of deviations left unpenalised (with at least
        ``min_evidence`` deviations observed) above which the pair is
        reported as colluding.
    """

    modified_protocol = True

    def __init__(
        self,
        *args,
        watch: Tuple[Tuple[int, int], ...] = (),
        config: ProtocolConfig = PAPER_CONFIG,
        collusion_threshold: float = 0.8,
        min_evidence: int = 8,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.watch = set(watch)
        self.config = config
        self.collusion_threshold = collusion_threshold
        self.min_evidence = min_evidence
        self.pairs: Dict[Tuple[int, int], PairObservation] = {}

    # ------------------------------------------------------------------
    def _pair(self, sender: int, receiver: int) -> Optional[PairObservation]:
        key = (sender, receiver)
        if self.watch and key not in self.watch:
            return None
        observation = self.pairs.get(key)
        if observation is None:
            observation = PairObservation(
                sender=sender, receiver=receiver,
                diagnosis=DiagnosisWindow(self.config.window,
                                          self.config.thresh),
            )
            self.pairs[key] = observation
        return observation

    def on_frame(self, frame: Frame) -> None:
        # Passive: never respond, only watch; still maintain NAV/EIFS
        # bookkeeping via the base class for realistic idle counting.
        self._pending_eifs = False
        if frame.kind is FrameKind.RTS:
            self._observe_rts(frame)
        elif frame.kind in (FrameKind.CTS, FrameKind.ACK):
            self._observe_response(frame)
        if frame.dst != self.node_id:
            self._set_nav(frame)

    # ------------------------------------------------------------------
    def _observe_response(self, frame: Frame) -> None:
        # CTS/ACK from receiver (src) to sender (dst).
        observation = self._pair(frame.dst, frame.src)
        if observation is None or frame.assigned_backoff < 0:
            return
        assignment = frame.assigned_backoff
        if observation._await_penalty:
            # The receiver should have folded a penalty into this
            # assignment; an honest base never exceeds CWmin.
            if assignment <= self.config.cw_min:
                observation.unpenalised_deviations += 1
            observation._await_penalty = False
        observation.assignment = assignment
        observation.reference_idle = self.idle_counter.idle_slots(self.sim.now)
        observation.next_first_stage = (
            1 if frame.kind is FrameKind.ACK else frame.attempt + 1
        )

    def _observe_rts(self, frame: Frame) -> None:
        observation = self._pair(frame.src, frame.dst)
        if (observation is None or observation.assignment is None
                or observation.reference_idle is None):
            return
        idle_now = self.idle_counter.idle_slots(self.sim.now)
        b_act = max(idle_now - observation.reference_idle, 0)
        first = observation.next_first_stage
        if frame.attempt < first:
            first = 1
        b_exp = expected_backoff_sum(
            observation.assignment, frame.src, first, frame.attempt,
            self.config.cw_min, self.config.cw_max,
        )
        verdict = check_deviation(b_exp, b_act, self.config.alpha)
        observation.packets += 1
        observation.diagnosis.update(verdict.difference)
        if verdict.deviated:
            observation.deviations += 1
            observation._await_penalty = True

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    def sender_misbehaving(self, sender: int, receiver: int) -> bool:
        """Observer's independent diagnosis of the sender."""
        observation = self.pairs.get((sender, receiver))
        return observation is not None and observation.diagnosis.is_misbehaving

    def colluding(self, sender: int, receiver: int) -> bool:
        """Whether the pair shows collusion: persistent sender
        deviations that the receiver never penalises."""
        observation = self.pairs.get((sender, receiver))
        if observation is None:
            return False
        if observation.deviations < self.min_evidence:
            return False
        unpenalised = (
            observation.unpenalised_deviations / observation.deviations
        )
        return unpenalised >= self.collusion_threshold

    def report(self) -> Dict[Tuple[int, int], Dict[str, float]]:
        """Summary of every observed pair (for higher layers)."""
        out = {}
        for key, observation in self.pairs.items():
            out[key] = {
                "packets": observation.packets,
                "deviations": observation.deviations,
                "unpenalised_deviations": observation.unpenalised_deviations,
                "sender_misbehaving": self.sender_misbehaving(*key),
                "colluding": self.colluding(*key),
            }
        return out
