"""Backoff countdown with blocked-freeze and per-slot marginal sampling.

The timer implements 802.11 countdown semantics from one node's point
of view:

* it waits an interframe space (DIFS, or EIFS after a corrupted frame)
  of *unblocked* channel before counting;
* while unblocked and no marginal transmission is on the air, the
  remaining slots elapse deterministically (one completion event);
* while a marginal transmission is on the air, each slot is idle with
  probability ``1 - p`` and only idle slots decrement; the timer
  samples the gaps geometrically (one event per decrement, not per
  slot);
* when blocked (strong carrier, NAV, or the MAC is mid-exchange) the
  counter freezes *at slot boundaries* — progress inside a partial
  slot is discarded, exactly as in the standard;
* on reaching zero the owner's callback fires and the owner transmits
  unconditionally (stations are committed at the slot boundary; this
  preserves the genuine collision race between contenders whose
  counters expire on the same boundary).

The "blocked" notion is owned by the MAC, which ORs physical carrier
sense, virtual carrier sense (NAV) and its own transceiver state and
calls :meth:`set_blocked` on the edges.
"""

from __future__ import annotations

import random
from math import log
from typing import Callable, Optional

from repro.sim.engine import EventHandle, Simulator


class BackoffTimer:
    """One node's backoff engine.

    Parameters
    ----------
    sim:
        Event kernel.
    slot_us:
        Slot duration.
    rng:
        Stream for marginal-slot sampling.
    marginal_probability:
        Callable returning the current combined per-slot busy
        probability from marginally-sensed transmissions.
    ifs_provider:
        Callable returning the interframe space to observe before
        (re)starting the countdown — DIFS normally, EIFS after a
        reception error.
    on_expire:
        Fired when the countdown reaches zero.
    """

    def __init__(
        self,
        sim: Simulator,
        slot_us: int,
        rng: random.Random,
        marginal_probability: Callable[[], float],
        ifs_provider: Callable[[], int],
        on_expire: Callable[[], None],
    ):
        self.sim = sim
        self.slot_us = slot_us
        self.rng = rng
        self.marginal_probability = marginal_probability
        self.ifs_provider = ifs_provider
        self.on_expire = on_expire
        self.remaining = 0
        self.active = False
        self.blocked = False
        self._state = "idle"  # idle | wait_ifs | counting | frozen
        self._handle: Optional[EventHandle] = None
        self._segment_start = 0
        self._segment_sampled = False
        #: Lifetime slot count actually waited (for tests/metrics).
        self.slots_counted = 0

    # ------------------------------------------------------------------
    # Owner API
    # ------------------------------------------------------------------
    def start(self, slots: int) -> None:
        """Begin a countdown of ``slots`` idle slots (may be zero)."""
        if self.active:
            raise RuntimeError("timer already active")
        if slots < 0:
            raise ValueError("slots must be >= 0")
        self.remaining = slots
        self.active = True
        if self.blocked:
            self._state = "frozen"
        else:
            self._enter_wait_ifs()

    def cancel(self) -> None:
        """Abandon the countdown entirely."""
        self._cancel_handle()
        self.active = False
        self._state = "idle"

    def set_blocked(self, blocked: bool) -> None:
        """Update the channel-blocked flag (idempotent on no-change)."""
        if blocked == self.blocked:
            return
        self.blocked = blocked
        if not self.active:
            return
        if blocked:
            self._freeze()
        else:
            self._enter_wait_ifs()

    def marginal_changed(self) -> None:
        """The combined marginal busy probability changed; resegment."""
        if not self.active or self._state != "counting":
            return
        self._account_clean_progress()
        if self.remaining == 0:
            # The countdown completes at this very timestamp; the
            # pending completion event fires later in FIFO order.
            return
        self._cancel_handle()
        self._begin_segment()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _enter_wait_ifs(self) -> None:
        self._cancel_handle()
        self._state = "wait_ifs"
        self._handle = self.sim.schedule(self.ifs_provider(), self._ifs_elapsed)

    def _ifs_elapsed(self) -> None:
        if self.remaining == 0:
            self._expire()
            return
        self._begin_segment()

    def _begin_segment(self) -> None:
        self._state = "counting"
        self._segment_start = self.sim.now
        if self.remaining <= 0:
            self._segment_sampled = False
            self._handle = self.sim.schedule(0, self._clean_complete)
            return
        p_busy = self.marginal_probability()
        if p_busy <= 0.0:
            self._segment_sampled = False
            self._handle = self.sim.schedule(
                self.remaining * self.slot_us, self._clean_complete
            )
        else:
            self._segment_sampled = True
            self._schedule_sampled_decrement(p_busy)

    def _schedule_sampled_decrement(self, p_busy: float) -> None:
        if p_busy >= 1.0:
            # Every slot busy: no decrement until the marginal set
            # changes; park without an event.
            self._handle = None
            return
        # Inlined ``geometric_skip`` (hot: once per counted slot under
        # marginal interference); draws and arithmetic are identical.
        if p_busy <= 0.0:
            busy_run = 0
        else:
            u = self.rng.random()
            busy_run = int(log(u) / log(p_busy)) if u > 0.0 else 0
        delay = (busy_run + 1) * self.slot_us
        self._handle = self.sim.schedule(delay, self._sampled_decrement)

    def _sampled_decrement(self) -> None:
        self.remaining -= 1
        self.slots_counted += 1
        self._segment_start = self.sim.now
        if self.remaining == 0:
            self._expire()
            return
        p_busy = self.marginal_probability()
        if p_busy <= 0.0:
            self._begin_segment()
        else:
            self._schedule_sampled_decrement(p_busy)

    def _clean_complete(self) -> None:
        self.slots_counted += self.remaining
        self.remaining = 0
        self._expire()

    def _account_clean_progress(self) -> None:
        """Credit whole slots elapsed in a clean counting segment."""
        if self._segment_sampled or self._state != "counting":
            return
        elapsed_slots = (self.sim.now - self._segment_start) // self.slot_us
        credited = min(int(elapsed_slots), self.remaining)
        self.remaining -= credited
        self.slots_counted += credited

    def _freeze(self) -> None:
        if self._state == "wait_ifs":
            # A zero-slot countdown whose IFS completes on this very
            # timestamp is already committed (same rule as the counting
            # branch below): let the pending completion fire and expire.
            if (
                self.remaining == 0
                and self._handle is not None
                and self._handle.pending
                and self._handle.time == self.sim.now
            ):
                self._state = "frozen"
                return
            self._cancel_handle()
            self._state = "frozen"
            return
        if self._state != "counting":
            self._state = "frozen"
            return
        # A completion/decrement due at this very timestamp represents
        # a countdown that hit zero on the same slot boundary as the
        # channel became busy: the station is already committed, so we
        # let the event fire (this is what makes same-boundary
        # collisions possible).
        if (
            self._handle is not None
            and self._handle.pending
            and self._handle.time == self.sim.now
            and self._would_expire_now()
        ):
            self._state = "frozen"
            return
        self._account_clean_progress()
        self._cancel_handle()
        self._state = "frozen"

    def _would_expire_now(self) -> bool:
        if not self._segment_sampled:
            return True  # clean completion event means remaining -> 0
        return self.remaining == 1

    def _expire(self) -> None:
        self._cancel_handle()
        self.active = False
        self._state = "idle"
        self.on_expire()

    def _cancel_handle(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BackoffTimer(state={self._state}, remaining={self.remaining}, "
            f"blocked={self.blocked})"
        )
