"""The paper's modified MAC ("CORRECT" in the evaluation figures).

Differences from plain :class:`~repro.mac.dcf.DcfMac`:

Sender side
    * The first-attempt backoff toward a receiver is the value that
      receiver assigned in its last CTS/ACK (an arbitrary self-chosen
      value is allowed only before the first assignment).
    * Retransmission backoffs come from the shared deterministic
      function ``f`` scaled by the standard contention window, so the
      receiver can reconstruct them.
    * Optionally, assignments are audited against the deterministic
      receiver function ``g`` (receiver-misbehavior detection,
      Section 4.4).

Receiver side
    * A per-sender :class:`~repro.core.monitor.SenderMonitor` measures
      ``B_act`` via the node's idle-slot counter, applies equation 1,
      computes penalties, draws the next assignment (placed in both
      CTS and ACK) and maintains the W/THRESH diagnosis window.
    * Optionally an :class:`~repro.core.attempt_verify.AttemptAuditor`
      occasionally drops an RTS on purpose to verify attempt-number
      honesty.
    * Optionally, senders that stand diagnosed are refused service
      (the paper's "MAC layer may refuse to accept packets from the
      misbehaving node by not responding with a CTS").

Misbehavior still enters through the sender policy: a cheating sender
counts down only part of whatever backoff this MAC computed.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.adaptive import AdaptiveThreshold
from repro.core.attempt_verify import AttemptAuditor
from repro.core.backoff_function import retry_backoff
from repro.core.monitor import SenderMonitor
from repro.core.params import PAPER_CONFIG, ProtocolConfig
from repro.core.receiver_verify import ReceiverAuditor
from repro.detect.base import Detector
from repro.mac.dcf import DcfMac, _Responder
from repro.mac.frames import Frame


class CorrectMac(DcfMac):
    """DCF with the paper's detection/correction/diagnosis extensions.

    Extra parameters (beyond :class:`DcfMac`)
    ----------------------------------------
    config:
        Protocol parameters (alpha, W, THRESH, penalty model, ...).
    enable_attempt_audit:
        Turn on intentional-RTS-drop attempt verification.
    audit_sender_assignments:
        Sender-side ``g`` audit of receiver assignments (only
        meaningful when receivers set ``config.use_deterministic_g``).
    refuse_diagnosed:
        Deny CTS to senders that currently stand diagnosed.
    adaptive_thresh:
        Replace the fixed THRESH with the adaptive estimator of
        :class:`repro.core.adaptive.AdaptiveThreshold` (the paper's
        deferred future work): the receiver tracks the noise of the
        per-packet differences across all its senders and re-derives
        THRESH to hold a target misdiagnosis rate.  Only meaningful
        for threshold-style detectors (the default ``window``).
    detector_factory:
        Zero-argument callable producing one fresh
        :class:`~repro.detect.base.Detector` per monitored sender
        (see :func:`repro.detect.detector_factory`).  ``None`` keeps
        the paper's W/THRESH window detector, bit-identical to
        pre-registry builds.
    """

    modified_protocol = True

    def __init__(
        self,
        *args,
        config: ProtocolConfig = PAPER_CONFIG,
        enable_attempt_audit: bool = False,
        audit_sender_assignments: bool = False,
        refuse_diagnosed: bool = False,
        adaptive_thresh: bool = False,
        detector_factory: Optional[Callable[[], Detector]] = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.config = config
        if (config.cw_min, config.cw_max) != (
            self.timings.cw_min, self.timings.cw_max
        ):
            raise ValueError(
                "protocol config and PHY timings disagree on CW bounds: "
                "the deterministic function f would diverge between "
                "sender and receiver"
            )
        self.adaptive_threshold: Optional[AdaptiveThreshold] = (
            AdaptiveThreshold(window=config.window) if adaptive_thresh else None
        )
        self.refuse_diagnosed = refuse_diagnosed
        self.audit_sender_assignments = audit_sender_assignments
        self.detector_factory = detector_factory
        self._monitors: Dict[int, SenderMonitor] = {}
        self._assignments: Dict[int, int] = {}
        self._stage1_backoff: Dict[int, int] = {}
        self._receiver_auditors: Dict[int, ReceiverAuditor] = {}
        self._assign_rng = None  # created lazily from the registry-free rng
        self.attempt_auditor: Optional[AttemptAuditor] = None
        if enable_attempt_audit:
            self.attempt_auditor = AttemptAuditor(self.rng)

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def monitor_for(self, sender: int) -> SenderMonitor:
        """The per-sender monitor (created on first contact)."""
        monitor = self._monitors.get(sender)
        if monitor is None:
            detector = (
                self.detector_factory()
                if self.detector_factory is not None else None
            )
            monitor = SenderMonitor(
                sender, self.config, self.rng, receiver_id=self.node_id,
                detector=detector,
            )
            self._monitors[sender] = monitor
        return monitor

    def _judge_sender(self, src: int, attempt: int, seq: int) -> Optional[_Responder]:
        """Run the full receiver pipeline for one observed transmission.

        Shared by the RTS path (four-way mode) and the DATA path
        (basic access): audit, refusal, equation-1 check, penalty,
        next assignment, diagnosis update.  None means stay silent.
        """
        auditor = self.attempt_auditor
        if auditor is not None:
            outcome = auditor.on_next_rts(src, attempt)
            if outcome is not None:
                self.collector.on_attempt_audit(
                    receiver=self.node_id, outcome=outcome, time=self.sim.now
                )
            if auditor.is_proven(src):
                return None  # conclusively misbehaving: refuse service
            if auditor.should_drop(src, attempt):
                return None  # intentional drop; await the retry
        monitor = self.monitor_for(src)
        if self.refuse_diagnosed and monitor.is_misbehaving:
            return None
        idle_now = self.idle_counter.idle_slots(self.sim.now)
        if self.adaptive_threshold is not None and hasattr(
            monitor.detector, "thresh"
        ):
            monitor.detector.thresh = self.adaptive_threshold.current_thresh()
        verdict = monitor.on_rts(attempt, idle_now, seq=seq, now_us=self.sim.now)
        if self.adaptive_threshold is not None and verdict.deviation is not None:
            self.adaptive_threshold.update(verdict.deviation.difference)
        self.collector.on_rts_verdict(
            receiver=self.node_id, sender=src, verdict=verdict, time=self.sim.now
        )
        return _Responder(
            src=src,
            attempt=attempt,
            assignment=verdict.assignment,
            diagnosed=verdict.diagnosed,
        )

    def _make_cts_response(self, rts: Frame) -> Optional[_Responder]:
        return self._judge_sender(rts.src, rts.attempt, rts.seq)

    def _make_data_response(
        self, data: Frame, duplicate: bool
    ) -> Optional[_Responder]:
        if duplicate:
            # Retransmission of an already-delivered packet (our ACK
            # was lost): re-ACK with the standing assignment and leave
            # the diagnosis window untouched.
            monitor = self.monitor_for(data.src)
            resp = _Responder(
                src=data.src,
                attempt=data.attempt,
                assignment=monitor.current_assignment
                if monitor.current_assignment is not None else -1,
                diagnosed=monitor.is_misbehaving,
            )
            resp.extra["duplicate"] = True
            return resp
        resp = self._judge_sender(data.src, data.attempt, data.seq)
        if resp is not None:
            resp.extra["duplicate"] = False
        return resp

    def _on_response_sent(self, kind: str, resp: _Responder) -> None:
        monitor = self.monitor_for(resp.src)
        idle_now = self.idle_counter.idle_slots(self.sim.now)
        monitor.on_response_sent(kind, resp.attempt, idle_now)

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def _initial_backoff(self, dst: int) -> int:
        assigned = self._assignments.get(dst)
        if assigned is None:
            # First packet toward this receiver: arbitrary choice.
            assigned = self.rng.randint(0, self.timings.cw_min)
        self._stage1_backoff[dst] = assigned
        return assigned

    def _retry_backoff(self, dst: int, attempt: int) -> int:
        stage1 = self._stage1_backoff.get(dst, 0)
        return retry_backoff(
            stage1, self.node_id, attempt, self.timings.cw_min, self.timings.cw_max
        )

    def _note_assignment(self, frame: Frame) -> None:
        if frame.assigned_backoff < 0:
            return
        assigned = frame.assigned_backoff
        if self.audit_sender_assignments and frame.kind.value == "ack":
            auditor = self._receiver_auditors.get(frame.src)
            if auditor is None:
                auditor = ReceiverAuditor(
                    frame.src, self.node_id, self.timings.cw_min
                )
                self._receiver_auditors[frame.src] = auditor
            verdict = auditor.check_assignment(assigned, counter=self._seq)
            if verdict.receiver_misbehaving:
                self.collector.on_receiver_audit(
                    sender=self.node_id, receiver=frame.src,
                    verdict=verdict, time=self.sim.now,
                )
            assigned = verdict.corrected_backoff
        trace = self.medium.trace
        if trace is not None:
            trace.record(
                self.sim.now, "assignment", self.node_id,
                src=frame.src, value=assigned,
                carried=frame.assigned_backoff,
                frame_kind=frame.kind.value,
            )
        self._assignments[frame.src] = assigned

    def receiver_auditor_for(self, receiver: int) -> Optional[ReceiverAuditor]:
        """Sender-side auditor for a given receiver, if any exists yet."""
        return self._receiver_auditors.get(receiver)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CorrectMac(node={self.node_id}, state={self._state})"
