"""IEEE 802.11 frame records for the RTS/CTS/DATA/ACK exchange.

Frames carry the standard fields plus the two additions the paper's
modified protocol makes:

* RTS gains an *attempt number* (Section 4.1) so the receiver can
  reconstruct deterministic retransmission backoffs, and
* CTS and ACK gain an *assigned backoff* (Section 3.2) dictating the
  sender's next backoff.

Both fields exist on every frame object but are only meaningful (and
only add header bytes) under the modified protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.phy.constants import (
    ACK_SIZE_BYTES,
    ASSIGNED_BACKOFF_FIELD_BYTES,
    ATTEMPT_FIELD_BYTES,
    CTS_SIZE_BYTES,
    DATA_HEADER_BYTES,
    RTS_SIZE_BYTES,
)


class FrameKind(enum.Enum):
    """The four DCF exchange frame types."""

    RTS = "rts"
    CTS = "cts"
    DATA = "data"
    ACK = "ack"


@dataclass(frozen=True)
class Frame:
    """One MAC frame.

    Attributes
    ----------
    kind:
        RTS / CTS / DATA / ACK.
    src / dst:
        Node identifiers (every frame here is unicast).
    size_bytes:
        Total size on air, including headers and any protocol
        extension fields.
    duration_us:
        NAV value: time the exchange still needs *after* this frame
        ends.  Overhearers defer for this long.
    seq:
        Sender-local packet sequence number (DATA bookkeeping).
    attempt:
        Attempt number advertised in an RTS (0 on other frames).
    assigned_backoff:
        Backoff assigned by the receiver in CTS/ACK under the modified
        protocol; -1 when absent.
    payload_bytes:
        Application payload carried by a DATA frame.
    """

    kind: FrameKind
    src: int
    dst: int
    size_bytes: int
    duration_us: int
    seq: int = 0
    attempt: int = 0
    assigned_backoff: int = -1
    payload_bytes: int = 0


def rts_size(modified_protocol: bool) -> int:
    """RTS size, including the attempt field under the modified protocol."""
    return RTS_SIZE_BYTES + (ATTEMPT_FIELD_BYTES if modified_protocol else 0)


def cts_size(modified_protocol: bool) -> int:
    """CTS size, including the assigned-backoff field when modified."""
    return CTS_SIZE_BYTES + (ASSIGNED_BACKOFF_FIELD_BYTES if modified_protocol else 0)


def ack_size(modified_protocol: bool) -> int:
    """ACK size, including the assigned-backoff field when modified."""
    return ACK_SIZE_BYTES + (ASSIGNED_BACKOFF_FIELD_BYTES if modified_protocol else 0)


def data_size(payload_bytes: int) -> int:
    """DATA frame size: payload plus MAC header and FCS."""
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be >= 0")
    return payload_bytes + DATA_HEADER_BYTES
