"""MAC layer: IEEE 802.11 DCF and the paper's modified (CORRECT) MAC."""

from repro.mac.backoff_timer import BackoffTimer
from repro.mac.correct import CorrectMac
from repro.mac.dcf import DcfMac
from repro.mac.frames import Frame, FrameKind, ack_size, cts_size, data_size, rts_size
from repro.mac.misbehaving_receiver import UnderAssigningReceiverMac
from repro.mac.observer import ObserverMac, PairObservation
from repro.mac.spoofing import AuthenticatingReceiverMac, SpoofingSenderMac
from repro.mac.timing import ExchangeTiming

__all__ = [
    "BackoffTimer",
    "CorrectMac",
    "DcfMac",
    "UnderAssigningReceiverMac",
    "ObserverMac",
    "PairObservation",
    "AuthenticatingReceiverMac",
    "SpoofingSenderMac",
    "Frame",
    "FrameKind",
    "ack_size",
    "cts_size",
    "data_size",
    "rts_size",
    "ExchangeTiming",
]
