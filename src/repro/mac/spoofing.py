"""MAC-address spoofing misbehavior and its countermeasure (§4.4).

The paper: "a misbehaving node may use different MAC addresses for
different packet transmissions.  A receiver monitoring such a sender
cannot effectively penalize the misbehaving node, as the receiver
associates different MAC addresses with different nodes.  The proposed
scheme can be augmented with authentication mechanisms provided by
higher layers to identify such misbehaving nodes."

:class:`SpoofingSenderMac` rotates the source address it advertises
across a set of aliases, one per packet.  Each alias gets a fresh
:class:`~repro.core.monitor.SenderMonitor` at the receiver, so:

* penalties don't accumulate — every alias's first packet is
  unjudged, and its deviation history restarts;
* the diagnosis window never fills for any single alias.

The countermeasure is an identity resolver: when the receiver's MAC is
given an ``identity_resolver`` (modelling a higher-layer
authentication service that maps addresses to principals), it monitors
by *principal*, collapsing the aliases back into one history.  See
``tests/test_spoofing.py`` for the attack succeeding without the
resolver and dying with it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional, Sequence

from repro.mac.correct import CorrectMac
from repro.mac.dcf import _Responder
from repro.mac.frames import Frame


class SpoofingSenderMac(CorrectMac):
    """A CORRECT sender that rotates its advertised address per packet.

    Extra parameters
    ----------------
    aliases:
        Addresses to rotate through.  Must include addresses no other
        node uses.  The node still *receives* frames addressed to any
        of its aliases.
    """

    def __init__(self, *args, aliases: Sequence[int] = (), **kwargs):
        super().__init__(*args, **kwargs)
        if not aliases:
            raise ValueError("need at least one alias")
        self.aliases = list(aliases)
        self._alias_index = 0

    @property
    def current_alias(self) -> int:
        return self.aliases[self._alias_index % len(self.aliases)]

    def _try_dequeue(self) -> None:
        # Rotate to a fresh address for each new packet.
        if self._state == "idle":
            self._alias_index += 1
        super()._try_dequeue()

    # ------------------------------------------------------------------
    # Outbound frames advertise the alias instead of the true identity.
    # ------------------------------------------------------------------
    def _outbound(self, frame: Frame) -> Frame:
        if frame.src == self.node_id:
            return replace(frame, src=self.current_alias)
        return frame

    # ------------------------------------------------------------------
    # Inbound: accept frames addressed to any alias.
    # ------------------------------------------------------------------
    def on_frame(self, frame: Frame) -> None:
        if frame.dst in self.aliases and frame.dst != self.node_id:
            frame = replace(frame, dst=self.node_id)
        super().on_frame(frame)


class AuthenticatingReceiverMac(CorrectMac):
    """A CORRECT receiver with a higher-layer identity resolver.

    ``identity_resolver(address) -> principal`` models the paper's
    "authentication mechanisms provided by higher layers": all frames
    whose addresses resolve to the same principal share one monitor,
    one penalty state, and one diagnosis window.  Responses still go
    to the address the sender used (it is listening there).
    """

    def __init__(
        self,
        *args,
        identity_resolver: Optional[Callable[[int], int]] = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.identity_resolver = identity_resolver

    def _principal(self, address: int) -> int:
        if self.identity_resolver is None:
            return address
        return self.identity_resolver(address)

    def _judge_sender(self, src: int, attempt: int, seq: int) -> Optional[_Responder]:
        principal = self._principal(src)
        response = super()._judge_sender(principal, attempt, seq)
        if response is not None and response.src != src:
            # Answer to the address actually used on the air.
            response.src = src
        return response

    def _on_response_sent(self, kind: str, resp: _Responder) -> None:
        monitor = self.monitor_for(self._principal(resp.src))
        idle_now = self.idle_counter.idle_slots(self.sim.now)
        monitor.on_response_sent(kind, resp.attempt, idle_now)
