"""IEEE 802.11 DCF MAC state machine (sender + responder roles).

:class:`DcfMac` implements the standard Distributed Coordination
Function over the probabilistic medium: DIFS/EIFS deference, random
backoff with binary-exponential contention windows, the four-way
RTS/CTS/DATA/ACK exchange, NAV-based virtual carrier sense, CTS/ACK
timeouts, and retry limits.  A node plays both roles: its *sender*
half drains a traffic source toward a destination; its *responder*
half answers RTS/DATA addressed to it.

The paper's modified protocol (:class:`repro.mac.correct.CorrectMac`)
subclasses this and overrides a small set of hooks: how initial and
retry backoffs are chosen, what extra fields CTS/ACK carry, and what
receiver-side monitoring happens around each exchange.

Misbehavior is injected through a
:class:`~repro.core.sender_policy.ConformingPolicy`-style policy
object: the MAC asks it how many of the nominal backoff slots to
actually count and what attempt number to advertise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.sender_policy import ConformingPolicy
from repro.mac.backoff_timer import BackoffTimer
from repro.mac.frames import Frame, FrameKind, ack_size, cts_size, data_size, rts_size
from repro.mac.timing import ExchangeTiming
from repro.phy.constants import PhyTimings, SHORT_RETRY_LIMIT
from repro.phy.medium import Medium
from repro.phy.sensing import IdleSlotCounter
from repro.sim.engine import EventHandle, Simulator
from repro.sim.rng import RngRegistry, binomial


@dataclass
class _Exchange:
    """Sender-side state for the packet currently being delivered."""

    dst: int
    seq: int
    payload_bytes: int
    attempt: int = 1
    started_us: int = 0


@dataclass
class _Responder:
    """Responder-side state for the exchange currently being answered."""

    src: int
    attempt: int
    assignment: int = -1
    diagnosed: bool = False
    timeout: Optional[EventHandle] = None
    extra: dict = field(default_factory=dict)


class DcfMac:
    """One node's MAC instance.

    Parameters
    ----------
    sim / medium:
        Kernel and channel.
    node_id:
        Unique integer identity (also used by the deterministic
        function ``f`` under the modified protocol).
    rng_registry:
        Source of this node's random streams.
    collector:
        Metrics sink (see :mod:`repro.metrics.collector`).
    payload_bytes:
        DATA payload size for flows this node terminates (used for
        responder-side timeout budgets as well).
    policy:
        Sender (mis)behaviour policy.
    timings:
        PHY timing bundle.
    retry_limit:
        Attempts per packet before the packet is dropped.
    use_rts_cts:
        True (default) runs the four-way RTS/CTS/DATA/ACK exchange the
        paper evaluates; False runs basic access (DATA/ACK), which the
        paper notes the scheme also supports — the attempt number then
        travels in the DATA header and the assignment in the ACK.
    """

    #: Whether frames carry the CORRECT protocol extension fields.
    modified_protocol = False

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: int,
        rng_registry: RngRegistry,
        collector,
        payload_bytes: int = 512,
        policy: Optional[ConformingPolicy] = None,
        timings: Optional[PhyTimings] = None,
        retry_limit: int = SHORT_RETRY_LIMIT,
        use_rts_cts: bool = True,
    ):
        self.sim = sim
        self.medium = medium
        self.node_id = node_id
        self.collector = collector
        self.payload_bytes = payload_bytes
        self.policy = policy if policy is not None else ConformingPolicy()
        self.timings = timings if timings is not None else medium.timings
        self.retry_limit = retry_limit
        self.use_rts_cts = use_rts_cts
        #: Basic-access duplicate detection: sender -> last ACKed seq.
        self._last_acked_seq: Dict[int, int] = {}
        self.rng = rng_registry.stream(f"mac/{node_id}")
        #: Cached combined marginal busy probability, refreshed on
        #: every marginal edge; the timer reads this instead of
        #: re-aggregating the medium's marginal set per segment.
        self._p_busy = 0.0
        self.timer = BackoffTimer(
            sim,
            self.timings.slot_us,
            rng_registry.stream(f"sense/{node_id}"),
            lambda: self._p_busy,
            self._current_ifs,
            self._on_backoff_expired,
        )
        self.idle_counter = IdleSlotCounter(
            self.timings.slot_us,
            rng_registry.stream(f"idle/{node_id}"),
            difs_us=self.timings.difs_us,
        )
        self.exchange_timing = ExchangeTiming(
            self.timings, payload_bytes, self.modified_protocol
        )
        self.source = None  # attached via attach_source()
        self._state = "idle"  # idle | backoff | await_cts | send_data | await_ack
        self._current: Optional[_Exchange] = None
        self._timeout: Optional[EventHandle] = None
        self._responder: Optional[_Responder] = None
        self._responding = False
        self._nav_until = 0
        self._nav_handle: Optional[EventHandle] = None
        self._pending_eifs = False
        self._seq = 0
        self._crashed = False
        #: Cached medium-side listener state (strong count, marginal
        #: set).  Resolved lazily on first use: the MAC is registered
        #: on the medium only after construction.
        self._mstate = None
        #: Effective slot count of the countdown currently (or last)
        #: started; recorded by backoff tracing only.
        self._backoff_slots = 0
        #: Lifetime counters (observability / tests).
        self.rts_sent = 0
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.crashes = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_source(self, source) -> None:
        """Connect a traffic source; it may call :meth:`wake`."""
        self.source = source

    def start(self) -> None:
        """Begin draining the source (call once at simulation start)."""
        self._try_dequeue()

    def wake(self) -> None:
        """Source signal: a packet became available."""
        if self._crashed:
            return
        if self._state == "idle":
            self._try_dequeue()

    # ------------------------------------------------------------------
    # Crash / restart (driven by repro.faults.NodeCrashFault)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose all volatile MAC state, as a reboot would.

        The in-flight exchange (the packet is lost without a drop
        callback — the node never learns its fate), pending timeouts,
        the responder role, the NAV and the backoff countdown all
        vanish.  A frame already on the air finishes transmitting: the
        model's granularity is one frame.  Channel-sense bookkeeping
        (busy/idle edge counting) deliberately keeps running so the
        medium's accounting stays balanced across the outage.
        """
        if self._crashed:
            return
        trace = self.medium.trace
        if trace is not None:
            trace.record(self.sim.now, "mac_crash", self.node_id)
        self._crashed = True
        self.crashes += 1
        self.timer.cancel()
        self._cancel_timeout()
        self._clear_responder()
        self._current = None
        self._set_state("idle")
        self._nav_until = 0
        if self._nav_handle is not None:
            self._nav_handle.cancel()
            self._nav_handle = None
        self._pending_eifs = False

    def restart(self) -> None:
        """Rejoin after a crash: fresh DIFS deference, resume draining."""
        if not self._crashed:
            return
        trace = self.medium.trace
        if trace is not None:
            trace.record(self.sim.now, "mac_restart", self.node_id)
        self._crashed = False
        self.idle_counter.resync(self.sim.now)
        self._update_blocked()
        self._try_dequeue()

    # ------------------------------------------------------------------
    # Medium listener interface
    # ------------------------------------------------------------------
    def on_channel_busy(self) -> None:
        # Fused hot path: this is the most frequent callback in a
        # saturated cell (one per strongly-sensing listener per
        # transmission), so the ``IdleSlotCounter.set_strong(True)``
        # and ``set_blocked(True)`` chains are inlined — semantics are
        # identical, the per-edge call depth is not.
        now = self.sim.now
        ic = self.idle_counter
        ic._last_now = now
        if not ic._strong:
            cursor = ic._cursor
            if now > cursor:
                whole = (now - cursor) // ic.slot_us
                if whole > 0:
                    p = ic._marginal_p
                    if p <= 0.0:
                        ic._slots += whole
                    elif p < 1.0:
                        ic._slots += whole - binomial(ic.rng, whole, p)
            ic._strong = True
        ic._cursor = now
        # A strong-busy edge always blocks the timer, whatever the NAV
        # or responder state says.
        timer = self.timer
        if not timer.blocked:
            timer.blocked = True
            if timer.active:
                timer._freeze()

    def on_channel_busy_batch(self, fast) -> None:
        """Batch-mode :meth:`on_channel_busy`.

        Same fused edge handling, but the catch-up binomial deficit
        (idle slots accrued since the cursor, sampled at the *old*
        marginal probability) is appended to ``fast`` for the medium's
        per-edge vectorized draw instead of being drawn inline.  As in
        :meth:`on_marginal_change_batch`, only the cumulative ``_slots``
        update moves; word consumption per stream is unchanged.
        """
        now = self.sim.now
        ic = self.idle_counter
        ic._last_now = now
        if not ic._strong:
            cursor = ic._cursor
            if now > cursor:
                whole = (now - cursor) // ic.slot_us
                if whole > 0:
                    p = ic._marginal_p
                    if p <= 0.0:
                        ic._slots += whole
                    elif p < 1.0:
                        if whole <= 32:
                            fast.append((ic, whole, p))
                        else:
                            ic._slots += whole - binomial(ic.rng, whole, p)
            ic._strong = True
        ic._cursor = now
        timer = self.timer
        if not timer.blocked:
            timer.blocked = True
            if timer.active:
                timer._freeze()

    def on_channel_idle(self) -> None:
        # The counter's deference mirrors what a conforming sender's
        # backoff logic will do next: EIFS after a reception error,
        # DIFS otherwise.  Fused like :meth:`on_channel_busy`.
        difs = self.timings.difs_us
        ifs = self.timings.eifs_us if self._pending_eifs else difs
        trace = self.medium.trace
        if trace is not None and (self._pending_eifs or ifs != difs):
            # Idle edges are the most frequent MAC event, so only the
            # informative ones are recorded: a plain DIFS deference
            # with no EIFS debt tells the checker nothing.  Either a
            # pending error or a non-DIFS choice records, so deferring
            # EIFS without cause is caught here, and clearing the debt
            # too early is caught at the next (always-recorded) "ifs".
            trace.record(self.sim.now, "defer", self.node_id, ifs_us=ifs)
        now = self.sim.now
        ic = self.idle_counter
        # set_strong(False): while strong no slots accrued, the clock
        # realigns at the edge and counting resumes an IFS later.
        ic._last_now = now
        ic._strong = False
        ic._cursor = now + ifs
        blocked = now < self._nav_until or self._responding
        timer = self.timer
        if blocked != timer.blocked:
            timer.set_blocked(blocked)

    def on_marginal_change(self) -> None:
        state = self._mstate
        if state is None:
            state = self._mstate = self.medium._states[self.node_id]
        product = 1.0
        for q in state.marginal.values():
            product *= 1.0 - q
        p = 1.0 - product
        self._p_busy = p
        # Inlined ``set_marginal_probability`` + ``advance``: a product
        # of values in [0, 1] stays in [0, 1] so the range check cannot
        # fire, and ``now`` comes off the (monotonic) kernel clock so
        # the backwards-clock guard cannot fire either.
        now = self.sim.now
        ic = self.idle_counter
        cursor = ic._cursor
        if not ic._strong:
            if now > cursor:
                whole = (now - cursor) // ic.slot_us
                if whole > 0:
                    op = ic._marginal_p
                    if op <= 0.0:
                        ic._slots += whole
                    elif op < 1.0:
                        ic._slots += whole - binomial(ic.rng, whole, op)
                    ic._cursor = cursor + whole * ic.slot_us
        elif now > cursor:
            ic._cursor = now
        ic._last_now = now
        ic._marginal_p = p
        timer = self.timer
        if timer.active and timer._state == "counting":
            timer.marginal_changed()

    def on_marginal_change_batch(self, fast) -> None:
        """Batch-mode :meth:`on_marginal_change`.

        Identical bookkeeping and timer handling, except that small-n
        binomial deficits are appended to ``fast`` (as ``(counter, n,
        p)``) so the medium can sample the whole transmission edge in
        one vectorized pool draw.  Only the deferred ``_slots`` update
        is reordered — nothing reads the cumulative count before the
        edge resolves, and per-stream word consumption is unchanged.
        """
        state = self._mstate
        if state is None:
            state = self._mstate = self.medium._states[self.node_id]
        product = 1.0
        for q in state.marginal.values():
            product *= 1.0 - q
        p = 1.0 - product
        self._p_busy = p
        now = self.sim.now
        ic = self.idle_counter
        cursor = ic._cursor
        if not ic._strong:
            if now > cursor:
                whole = (now - cursor) // ic.slot_us
                if whole > 0:
                    op = ic._marginal_p
                    if op <= 0.0:
                        ic._slots += whole
                    elif op < 1.0:
                        if whole <= 32:
                            fast.append((ic, whole, op))
                        else:
                            ic._slots += whole - binomial(ic.rng, whole, op)
                    ic._cursor = cursor + whole * ic.slot_us
        elif now > cursor:
            ic._cursor = now
        ic._last_now = now
        ic._marginal_p = p
        timer = self.timer
        if timer.active and timer._state == "counting":
            timer.marginal_changed()

    def on_frame_corrupted(self) -> None:
        if self._crashed:
            return
        self._pending_eifs = True

    def on_frame(self, frame: Frame) -> None:
        if self._crashed:
            return
        self._pending_eifs = False
        if frame.dst != self.node_id:
            self._set_nav(frame)
            return
        if frame.kind is FrameKind.RTS:
            self._handle_rts(frame)
        elif frame.kind is FrameKind.CTS:
            self._handle_cts(frame)
        elif frame.kind is FrameKind.DATA:
            self._handle_data(frame)
        elif frame.kind is FrameKind.ACK:
            self._handle_ack(frame)

    # ------------------------------------------------------------------
    # Carrier sense aggregation
    # ------------------------------------------------------------------
    def _update_blocked(self) -> None:
        blocked = (
            self.medium.strong_busy(self.node_id)
            or self.sim.now < self._nav_until
            or self._responding
        )
        self.timer.set_blocked(blocked)

    def _current_ifs(self) -> int:
        if self._pending_eifs:
            self._pending_eifs = False
            ifs = self.timings.eifs_us
        else:
            ifs = self.timings.difs_us
        trace = self.medium.trace
        if trace is not None:
            trace.record(self.sim.now, "ifs", self.node_id, ifs_us=ifs)
        return ifs

    def _set_state(self, state: str) -> None:
        trace = self.medium.trace
        if trace is not None and state != self._state:
            trace.record(self.sim.now, "mac_state", self.node_id,
                         frm=self._state, to=state)
        self._state = state

    def _set_nav(self, frame: Frame) -> None:
        if frame.duration_us <= 0:
            return
        until = self.sim.now + frame.duration_us
        if until <= self._nav_until:
            return
        self._nav_until = until
        if self._nav_handle is not None:
            self._nav_handle.cancel()
        self._nav_handle = self.sim.schedule_at(until, self._update_blocked)
        self._update_blocked()

    # ------------------------------------------------------------------
    # Sender half
    # ------------------------------------------------------------------
    def _try_dequeue(self) -> None:
        if self._crashed or self._state != "idle" or self.source is None:
            return
        packet = self.source.next_packet(self.sim.now)
        if packet is None:
            return
        self._seq += 1
        self._current = _Exchange(
            dst=packet.dst, seq=self._seq,
            payload_bytes=packet.payload_bytes,
            started_us=min(packet.created_us, self.sim.now),
        )
        self._begin_backoff(self._initial_backoff(packet.dst))

    def _begin_backoff(self, nominal_slots: int) -> None:
        effective = self.policy.effective_countdown(nominal_slots)
        trace = self.medium.trace
        if trace is not None:
            ex = self._current
            trace.record(
                self.sim.now, "backoff_start", self.node_id,
                nominal=nominal_slots, effective=effective,
                dst=ex.dst if ex is not None else -1,
                stage=ex.attempt if ex is not None else 1,
                slot_us=self.timings.slot_us,
                modified=self.modified_protocol,
            )
            self._backoff_slots = effective
        self._set_state("backoff")
        self.timer.start(effective)

    def _on_backoff_expired(self) -> None:
        trace = self.medium.trace
        if trace is not None:
            trace.record(self.sim.now, "backoff_commit", self.node_id,
                         slots=self._backoff_slots)
        if self.use_rts_cts:
            self._transmit_rts()
        else:
            self._transmit_data_direct()

    def _sender_timing(self) -> ExchangeTiming:
        ex = self._current
        if ex is None or ex.payload_bytes == self.payload_bytes:
            return self.exchange_timing
        return ExchangeTiming(self.timings, ex.payload_bytes, self.modified_protocol)

    def _transmit_rts(self) -> None:
        ex = self._current
        if ex is None:  # crashed between schedule and fire
            return
        et = self._sender_timing()
        frame = Frame(
            kind=FrameKind.RTS,
            src=self.node_id,
            dst=ex.dst,
            size_bytes=rts_size(self.modified_protocol),
            duration_us=et.rts_nav,
            seq=ex.seq,
            attempt=self.policy.reported_attempt(ex.attempt),
        )
        self.medium.start_transmission(
            self.node_id, self._outbound(frame), et.rts_airtime
        )
        self.rts_sent += 1
        self._set_state("await_cts")
        self._timeout = self.sim.schedule(
            et.rts_airtime + et.cts_timeout, self._on_timeout
        )

    def _transmit_data_direct(self) -> None:
        """Basic access: send DATA straight after the backoff."""
        ex = self._current
        if ex is None:  # crashed between schedule and fire
            return
        et = self._sender_timing()
        frame = Frame(
            kind=FrameKind.DATA,
            src=self.node_id,
            dst=ex.dst,
            size_bytes=data_size(ex.payload_bytes),
            duration_us=et.data_nav,
            seq=ex.seq,
            attempt=self.policy.reported_attempt(ex.attempt),
            payload_bytes=ex.payload_bytes,
        )
        self.medium.start_transmission(
            self.node_id, self._outbound(frame), et.data_airtime
        )
        self._set_state("await_ack")
        self._timeout = self.sim.schedule(
            et.data_airtime + et.ack_timeout, self._on_timeout
        )

    def _handle_cts(self, frame: Frame) -> None:
        ex = self._current
        if self._state != "await_cts" or ex is None or frame.src != ex.dst:
            return
        self._cancel_timeout()
        self._note_assignment(frame)
        self._set_state("send_data")
        self.sim.schedule(self.timings.sifs_us, self._transmit_data)

    def _transmit_data(self) -> None:
        ex = self._current
        if ex is None:  # crashed between schedule and fire
            return
        et = self._sender_timing()
        frame = Frame(
            kind=FrameKind.DATA,
            src=self.node_id,
            dst=ex.dst,
            size_bytes=data_size(ex.payload_bytes),
            duration_us=et.data_nav,
            seq=ex.seq,
            payload_bytes=ex.payload_bytes,
        )
        self.medium.start_transmission(
            self.node_id, self._outbound(frame), et.data_airtime
        )
        self._set_state("await_ack")
        self._timeout = self.sim.schedule(
            et.data_airtime + et.ack_timeout, self._on_timeout
        )

    def _handle_ack(self, frame: Frame) -> None:
        ex = self._current
        if self._state != "await_ack" or ex is None or frame.src != ex.dst:
            return
        self._cancel_timeout()
        self._note_assignment(frame)
        self.packets_delivered += 1
        self.collector.on_sender_success(
            self.node_id, ex.dst, ex.attempt, self.sim.now,
            delay_us=self.sim.now - ex.started_us,
        )
        if self.source is not None:
            self.source.packet_done(self.sim.now)
        self._finish_exchange()

    def _on_timeout(self) -> None:
        ex = self._current
        if ex is None:  # crashed between schedule and fire
            return
        self._timeout = None
        ex.attempt += 1
        if ex.attempt > self.retry_limit:
            self.packets_dropped += 1
            self.collector.on_sender_drop(self.node_id, ex.dst, self.sim.now)
            if self.source is not None:
                self.source.packet_done(self.sim.now)
            self._finish_exchange()
            return
        self._begin_backoff(self._retry_backoff(ex.dst, ex.attempt))

    def _finish_exchange(self) -> None:
        self._current = None
        self._set_state("idle")
        self._try_dequeue()

    def _cancel_timeout(self) -> None:
        if self._timeout is not None:
            self._timeout.cancel()
            self._timeout = None

    # ------------------------------------------------------------------
    # Responder half
    # ------------------------------------------------------------------
    def _handle_rts(self, frame: Frame) -> None:
        if self._responding:
            resp = self._responder
            # A retried RTS from the same sender while we await its
            # DATA means our CTS was lost; restart the response.
            if resp is not None and resp.src == frame.src and resp.timeout is not None:
                self._clear_responder()
            else:
                return
        if self._state in ("await_cts", "send_data", "await_ack"):
            return
        if self.sim.now < self._nav_until:
            return  # the standard forbids answering RTS under NAV
        response = self._make_cts_response(frame)
        if response is None:
            return
        self._responding = True
        self._responder = response
        self._update_blocked()
        self.sim.schedule(self.timings.sifs_us, self._transmit_cts)

    def _transmit_cts(self) -> None:
        resp = self._responder
        if resp is None:  # crashed between schedule and fire
            return
        et = self.exchange_timing
        frame = Frame(
            kind=FrameKind.CTS,
            src=self.node_id,
            dst=resp.src,
            size_bytes=cts_size(self.modified_protocol),
            duration_us=et.cts_nav,
            assigned_backoff=resp.assignment,
        )
        self.medium.start_transmission(
            self.node_id, self._outbound(frame), et.cts_airtime
        )
        self.sim.schedule(et.cts_airtime, self._after_cts)

    def _after_cts(self) -> None:
        resp = self._responder
        if resp is None:
            return
        self._on_response_sent("cts", resp)
        resp.timeout = self.sim.schedule(
            self.exchange_timing.data_timeout, self._responder_timeout
        )

    def _handle_data(self, frame: Frame) -> None:
        resp = self._responder
        if self._responding and resp is not None and frame.src == resp.src:
            # RTS/CTS mode: the DATA we cleared with our CTS.
            if resp.timeout is not None:
                resp.timeout.cancel()
                resp.timeout = None
            self.collector.on_delivery(
                src=frame.src,
                dst=self.node_id,
                payload_bytes=frame.payload_bytes,
                time=self.sim.now,
                diagnosed=resp.diagnosed,
            )
            self.sim.schedule(self.timings.sifs_us, self._transmit_ack)
            return
        if self.use_rts_cts:
            return
        # Basic access: an unsolicited DATA initiates the response.
        if self._responding or self._state in (
            "await_cts", "send_data", "await_ack"
        ):
            return
        if self.sim.now < self._nav_until:
            return
        duplicate = self._last_acked_seq.get(frame.src) == frame.seq
        response = self._make_data_response(frame, duplicate)
        if response is None:
            return
        self._responding = True
        self._responder = response
        self._update_blocked()
        if not duplicate:
            self._last_acked_seq[frame.src] = frame.seq
            self.collector.on_delivery(
                src=frame.src,
                dst=self.node_id,
                payload_bytes=frame.payload_bytes,
                time=self.sim.now,
                diagnosed=response.diagnosed,
            )
        self.sim.schedule(self.timings.sifs_us, self._transmit_ack)

    def _transmit_ack(self) -> None:
        resp = self._responder
        if resp is None:  # crashed between schedule and fire
            return
        et = self.exchange_timing
        frame = Frame(
            kind=FrameKind.ACK,
            src=self.node_id,
            dst=resp.src,
            size_bytes=ack_size(self.modified_protocol),
            duration_us=0,
            assigned_backoff=resp.assignment,
        )
        self.medium.start_transmission(
            self.node_id, self._outbound(frame), et.ack_airtime
        )
        self.sim.schedule(et.ack_airtime, self._after_ack)

    def _after_ack(self) -> None:
        resp = self._responder
        if resp is None:
            return
        # A duplicate-DATA re-ACK leaves the sender retrying the same
        # packet if this ACK is lost again, so the monitor's reference
        # must expect stage attempt+1 next ("cts" semantics) rather
        # than a fresh packet.
        kind = "cts" if resp.extra.get("duplicate") else "ack"
        self._on_response_sent(kind, resp)
        self._clear_responder()

    def _responder_timeout(self) -> None:
        self._clear_responder()

    def _clear_responder(self) -> None:
        resp = self._responder
        if resp is not None and resp.timeout is not None:
            resp.timeout.cancel()
        self._responder = None
        self._responding = False
        self._update_blocked()

    # ------------------------------------------------------------------
    # Protocol hooks (overridden by the CORRECT MAC)
    # ------------------------------------------------------------------
    def _initial_backoff(self, dst: int) -> int:
        """Backoff for a packet's first attempt (802.11: uniform [0, CWmin])."""
        cw = self.policy.next_contention_window(
            1, self.timings.cw_min, self.timings.cw_max
        )
        return self.policy.select_backoff(self.rng, cw)

    def _retry_backoff(self, dst: int, attempt: int) -> int:
        """Backoff after a failed attempt (802.11: uniform from doubled CW)."""
        cw = self.policy.next_contention_window(
            attempt, self.timings.cw_min, self.timings.cw_max
        )
        return self.policy.select_backoff(self.rng, cw)

    def _outbound(self, frame: Frame) -> Frame:
        """Last-touch hook on every frame this node puts on the air.

        The default is the identity; the spoofing adversary rewrites
        the source address here.
        """
        return frame

    def _make_cts_response(self, rts: Frame) -> Optional[_Responder]:
        """Decide whether/how to answer an RTS; None means stay silent."""
        return _Responder(src=rts.src, attempt=rts.attempt)

    def _make_data_response(
        self, data: Frame, duplicate: bool
    ) -> Optional[_Responder]:
        """Basic access: decide whether/how to ACK an unsolicited DATA."""
        resp = _Responder(src=data.src, attempt=data.attempt)
        resp.extra["duplicate"] = duplicate
        return resp

    def _on_response_sent(self, kind: str, resp: _Responder) -> None:
        """Called when a CTS/ACK to ``resp.src`` finished transmitting."""

    def _note_assignment(self, frame: Frame) -> None:
        """Called on CTS/ACK from our receiver (CORRECT stores it)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DcfMac(node={self.node_id}, state={self._state})"
