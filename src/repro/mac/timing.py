"""Exchange timing: airtimes, NAV durations and timeout budgets.

All helpers take the :class:`~repro.phy.constants.PhyTimings` bundle so
tests can shrink the numbers.  NAV durations follow the standard: each
frame advertises the time the rest of the exchange still needs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.mac.frames import ack_size, cts_size, data_size, rts_size
from repro.phy.constants import PhyTimings


def with_clock_drift(timings: PhyTimings, drift_ppm: float) -> PhyTimings:
    """A node-local timing bundle with a drifted slot clock.

    The slot is scaled by ``1 + drift_ppm/1e6`` and rounded to the
    kernel's integer-microsecond grid (floored at 1 us), so only
    drifts large enough to move the slot by >= 0.5 us change
    behaviour.  Everything derived from the slot (backoff countdown
    pace, timeout slack) follows automatically because consumers read
    ``slot_us`` from this bundle.
    """
    slot = max(1, round(timings.slot_us * (1.0 + drift_ppm / 1e6)))
    return replace(timings, slot_us=slot)


@dataclass(frozen=True)
class ExchangeTiming:
    """Precomputed airtimes and NAV values for one payload size.

    Parameters
    ----------
    timings:
        PHY timing bundle.
    payload_bytes:
        DATA payload size.
    modified_protocol:
        Whether the CORRECT header extensions are carried (slightly
        larger RTS/CTS/ACK).
    """

    timings: PhyTimings
    payload_bytes: int
    modified_protocol: bool

    @property
    def rts_airtime(self) -> int:
        return self.timings.frame_airtime_us(rts_size(self.modified_protocol))

    @property
    def cts_airtime(self) -> int:
        return self.timings.frame_airtime_us(cts_size(self.modified_protocol))

    @property
    def data_airtime(self) -> int:
        return self.timings.frame_airtime_us(data_size(self.payload_bytes))

    @property
    def ack_airtime(self) -> int:
        return self.timings.frame_airtime_us(ack_size(self.modified_protocol))

    # ------------------------------------------------------------------
    # NAV durations (time remaining after the carrying frame ends)
    # ------------------------------------------------------------------
    @property
    def rts_nav(self) -> int:
        """CTS + DATA + ACK plus the three interleaving SIFS gaps."""
        s = self.timings.sifs_us
        return 3 * s + self.cts_airtime + self.data_airtime + self.ack_airtime

    @property
    def cts_nav(self) -> int:
        """DATA + ACK plus two SIFS gaps."""
        s = self.timings.sifs_us
        return 2 * s + self.data_airtime + self.ack_airtime

    @property
    def data_nav(self) -> int:
        """ACK plus one SIFS gap."""
        return self.timings.sifs_us + self.ack_airtime

    # ------------------------------------------------------------------
    # Timeouts (measured from the end of the sender's own frame)
    # ------------------------------------------------------------------
    @property
    def cts_timeout(self) -> int:
        """How long to await a CTS: SIFS + CTS airtime + 2 slots slack."""
        return self.timings.sifs_us + self.cts_airtime + 2 * self.timings.slot_us

    @property
    def ack_timeout(self) -> int:
        """How long to await an ACK: SIFS + ACK airtime + 2 slots slack."""
        return self.timings.sifs_us + self.ack_airtime + 2 * self.timings.slot_us

    @property
    def data_timeout(self) -> int:
        """Responder's wait for DATA after sending CTS."""
        return self.timings.sifs_us + self.data_airtime + 2 * self.timings.slot_us

    @property
    def exchange_airtime(self) -> int:
        """Total busy time of one successful four-way exchange."""
        return (
            self.rts_airtime + self.cts_airtime + self.data_airtime
            + self.ack_airtime + 3 * self.timings.sifs_us
        )
