"""Receiver-side misbehavior model (Section 4.4).

In ad hoc networks the receiver itself may cheat when assigning
backoffs: handing a favoured sender *small* values pulls data from it
faster, at the expense of every other flow contending nearby.
:class:`UnderAssigningReceiverMac` implements that adversary: it runs
the normal CORRECT receiver logic but scales down the assignment it
advertises to its favoured sender(s).

The defence is on the sender side: with
``audit_sender_assignments=True`` (and receivers required to use the
deterministic function ``g``), a sender recomputes the honest
assignment, flags the under-assignment, and voluntarily waits the
honest amount — neutralising the receiver's lever.  The end-to-end
behaviour is exercised in ``tests/test_misbehaving_receiver.py``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.mac.correct import CorrectMac
from repro.mac.dcf import _Responder
from repro.mac.frames import Frame


class UnderAssigningReceiverMac(CorrectMac):
    """A CORRECT receiver that under-assigns backoffs to favourites.

    Extra parameters
    ----------------
    favoured:
        Sender ids that receive shrunken assignments (all senders when
        empty — a receiver greedy for any inbound traffic).
    assignment_divisor:
        How much the advertised assignment is divided by.
    """

    def __init__(
        self,
        *args,
        favoured: Optional[Iterable[int]] = None,
        assignment_divisor: float = 8.0,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if assignment_divisor < 1.0:
            raise ValueError("assignment_divisor must be >= 1")
        self.favoured: Set[int] = set(favoured or ())
        self.assignment_divisor = assignment_divisor
        #: How many assignments were shrunk (observability).
        self.under_assignments = 0

    def _is_favoured(self, sender: int) -> bool:
        return not self.favoured or sender in self.favoured

    def _make_cts_response(self, rts: Frame) -> Optional[_Responder]:
        response = super()._make_cts_response(rts)
        if response is None or not self._is_favoured(rts.src):
            return response
        shrunk = int(response.assignment / self.assignment_divisor)
        if shrunk < response.assignment:
            self.under_assignments += 1
        response.assignment = shrunk
        # Keep the monitor's own expectation consistent with what was
        # actually advertised, as a real cheating receiver would.
        self.monitor_for(rts.src).current_assignment = shrunk
        return response
