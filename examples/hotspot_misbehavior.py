#!/usr/bin/env python3
"""Public-hotspot scenario: why the access point should run CORRECT.

The paper motivates the scheme with infrastructure networks (airports,
cafes): the access point is trusted, the clients are not.  This
example sweeps the cheater's Percentage of Misbehavior and contrasts
what happens under plain IEEE 802.11 with the modified protocol —
the reproduction of Figure 5's story in one table.

Run:
    python examples/hotspot_misbehavior.py [--full]

``--full`` uses longer runs and more seeds (slower, smoother curves).
"""

from __future__ import annotations

import argparse

from repro.experiments import ScenarioConfig, run_seeds
from repro.metrics.stats import mean
from repro.net import circle_topology

CHEATER = 3


def sweep(protocol: str, pm: float, duration_us: int, seeds) -> dict:
    topology = circle_topology(
        8, misbehaving=(CHEATER,) if pm else (), pm_percent=pm
    )
    config = ScenarioConfig(
        topology=topology, protocol=protocol, duration_us=duration_us
    )
    results = run_seeds(config, seeds)
    return {
        "msb": mean([r.msb_throughput_bps for r in results]) / 1000,
        "avg": mean([r.avg_throughput_bps for r in results]) / 1000,
        "diag": mean([r.correct_diagnosis_percent for r in results]),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="longer runs, more seeds")
    args = parser.parse_args()
    duration_us = 10_000_000 if args.full else 2_000_000
    seeds = tuple(range(1, 6)) if args.full else (1, 2)

    pm_values = (0.0, 25.0, 50.0, 75.0, 100.0)
    print("One client cheats on its backoff; seven behave. All saturated.")
    print(f"({duration_us // 1_000_000}s per run x {len(seeds)} seeds)")
    print()
    header = (f"{'PM':>4} | {'802.11 cheater':>14} {'802.11 honest':>14} | "
              f"{'CORRECT cheater':>15} {'CORRECT honest':>14} {'diagnosed':>9}")
    print(header)
    print("-" * len(header))
    for pm in pm_values:
        dcf = sweep("802.11", pm, duration_us, seeds)
        cor = sweep("correct", pm, duration_us, seeds)
        print(f"{pm:4.0f} | {dcf['msb']:11.1f} Kbps {dcf['avg']:11.1f} Kbps | "
              f"{cor['msb']:12.1f} Kbps {cor['avg']:11.1f} Kbps "
              f"{cor['diag']:8.1f}%")
    print()
    print("Under 802.11 the cheater's share explodes with PM while honest")
    print("clients starve.  Under CORRECT the access point detects the")
    print("shortfall (equation 1), penalises the next assigned backoff, and")
    print("the cheater ends up at -- or below -- its fair share; by the time")
    print("correction loses its grip (PM near 100) diagnosis is certain and")
    print("the AP can simply refuse the client service.")


if __name__ == "__main__":
    main()
