#!/usr/bin/env python3
"""Drive-by cheater: why the diagnosis window must be small.

The paper rejects long-horizon behavioural profiling because "it may
not be feasible to monitor the behavior of senders over a large
sequence of transmissions when the node mobility is high".  Its W=5
window needs only a handful of packets.  This example drives a PM=90
cheater through a cell at increasing speeds and reports how much of
its traffic stood diagnosed while it was in range.

Run:
    python examples/driveby_mobility.py
"""

from __future__ import annotations

from repro.core import PartialCountdownPolicy
from repro.mac.correct import CorrectMac
from repro.metrics.collector import MetricsCollector
from repro.net import LinearMobility
from repro.net.node import build_node
from repro.net.traffic import BackloggedSource
from repro.phy.constants import PhyTimings
from repro.phy.medium import Medium
from repro.phy.propagation import ShadowingModel
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

SIM_SECONDS = 4
PM = 90.0


def run(speed_mps: float, seed: int = 1):
    sim = Simulator()
    registry = RngRegistry(seed)
    medium = Medium(sim, ShadowingModel(), rng=registry.stream("shadowing"),
                    timings=PhyTimings())
    collector = MetricsCollector(misbehaving={2})
    receiver = CorrectMac(sim, medium, 0, registry, collector)
    honest = CorrectMac(sim, medium, 1, registry, collector)
    cheater = CorrectMac(sim, medium, 2, registry, collector,
                         policy=PartialCountdownPolicy(PM))
    build_node(medium, receiver, (0.0, 0.0))
    build_node(medium, honest, (150.0, 0.0), BackloggedSource(0)).start()
    build_node(medium, cheater, (-240.0, 0.0), BackloggedSource(0)).start()
    LinearMobility(sim, medium, 2, velocity_mps=(speed_mps, 0.0))
    sim.run(until=SIM_SECONDS * 1_000_000)
    return collector, medium.position_of(2)


def main() -> None:
    print(f"A PM={PM:.0f}% cheater enters the cell edge (-240 m) and "
          f"drives through at various speeds; {SIM_SECONDS}s simulated.")
    print()
    print(f"{'speed':>8} | {'contact packets':>15} | {'diagnosed':>9} | "
          f"{'cheater Kbps':>12} | final x")
    for speed in (0.0, 10.0, 30.0, 60.0):
        collector, (x, _) = run(speed)
        stats = collector.flows[2]
        frac = (100.0 * stats.diagnosed_packets / stats.delivered_packets
                if stats.delivered_packets else 0.0)
        kbps = stats.delivered_bytes * 8 / SIM_SECONDS / 1000
        print(f"{speed:5.0f} m/s | {stats.delivered_packets:15d} | "
              f"{frac:8.1f}% | {kbps:12.1f} | {x:+6.0f} m")
    print()
    print("Even the fastest fly-through leaves dozens of exchanges in the")
    print("receiver's W=5 window — ample for diagnosis.  A long-horizon")
    print("profiling approach would never accumulate enough history.")


if __name__ == "__main__":
    main()
