#!/usr/bin/env python3
"""Ad hoc network: distributed detection across many receivers.

The paper's Figure 9 scenario — nodes scattered over 1500 m x 700 m,
each running a CBR flow to a neighbor, several of them shaving their
backoffs.  Every *receiver* independently monitors its own senders, so
detection is fully distributed: there is no access point.

The example prints, per misbehaving node, how its own receiver's
diagnosis window judged it, and shows the higher-layer hook the paper
proposes ("the network layer may use the diagnosis information to
route around misbehaving nodes"): the list of nodes each receiver
would report upward.

Run:
    python examples/adhoc_random_network.py
"""

from __future__ import annotations

import random

from repro.experiments import ScenarioConfig, build_scenario
from repro.net import random_topology

PM = 70.0
N_NODES = 30
N_MISBEHAVING = 4
SIM_SECONDS = 3


def main() -> None:
    topology = random_topology(
        random.Random(42), n_nodes=N_NODES, n_misbehaving=N_MISBEHAVING,
        pm_percent=PM,
    )
    cheaters = set(topology.misbehaving_senders)
    print(f"{N_NODES} nodes, {len(topology.flows)} single-hop CBR flows, "
          f"{N_MISBEHAVING} cheaters at PM={PM:.0f}%: nodes {sorted(cheaters)}")

    config = ScenarioConfig(
        topology=topology, protocol="correct",
        duration_us=SIM_SECONDS * 1_000_000, seed=7,
    )
    sim, nodes, collector = build_scenario(config)
    for node in nodes:
        node.start()
    sim.run(until=config.duration_us)

    print()
    print("Receiver-side verdicts (each receiver judges only its own senders).")
    print("A sender is *reported* upward when most of its packets stand")
    print("diagnosed — a persistent verdict, not a single noisy window:")
    reported: dict[int, list[int]] = {}
    for node in nodes:
        mac = node.mac
        monitors = getattr(mac, "_monitors", {})
        for sender, monitor in sorted(monitors.items()):
            if monitor.diagnosis.observations < 10:
                continue
            fraction = (monitor.diagnosis.flagged_observations
                        / monitor.diagnosis.observations)
            persistent = fraction > 0.5
            truth = "cheater" if sender in cheaters else "honest"
            if persistent:
                reported.setdefault(mac.node_id, []).append(sender)
            if sender in cheaters or persistent:
                verdict = "MISBEHAVING" if persistent else "ok"
                print(f"  receiver {mac.node_id:2d} -> sender {sender:2d} "
                      f"({truth:7s}): {verdict:12s} "
                      f"flagged {100 * fraction:5.1f}% of packets, "
                      f"deviations={monitor.deviations_observed}")

    print()
    print("Diagnosis summary over delivered packets:")
    print(f"  correct diagnosis: {collector.correct_diagnosis_percent():5.1f}%"
          f"   misdiagnosis: {collector.misdiagnosis_percent():5.1f}%")

    print()
    print("Higher-layer hand-off (Section 4.3): each receiver reports its")
    print("diagnosed senders so routing can avoid them / refuse forwarding:")
    if reported:
        for receiver, senders in sorted(reported.items()):
            print(f"  node {receiver:2d} reports: {sorted(set(senders))}")
    else:
        print("  (no node currently stands diagnosed)")
    flagged = {s for senders in reported.values() for s in senders}
    caught = flagged & cheaters
    false = flagged - cheaters
    print()
    print(f"Caught {len(caught)}/{len(cheaters)} cheaters "
          f"({sorted(caught)}), false reports: {sorted(false) or 'none'}")


if __name__ == "__main__":
    main()
