#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation section.

Runs each figure generator at the selected scale and prints the ASCII
table.  Scales:

    python examples/reproduce_figures.py              # default scale
    REPRO_QUICK=1 python examples/reproduce_figures.py  # smoke scale
    REPRO_FULL=1  python examples/reproduce_figures.py  # paper scale (hours)

Pass figure ids to restrict, e.g.:

    python examples/reproduce_figures.py fig4 fig5
"""

from __future__ import annotations

import sys
import time

from repro.experiments import ALL_FIGURES, active_settings
from repro.experiments.report import print_figure


def main() -> None:
    wanted = sys.argv[1:] or list(ALL_FIGURES)
    unknown = [w for w in wanted if w not in ALL_FIGURES]
    if unknown:
        raise SystemExit(
            f"unknown figure id(s) {unknown}; choose from {list(ALL_FIGURES)}"
        )
    settings = active_settings()
    print(f"Scale: {settings.duration_s:g}s per run, "
          f"{len(settings.seeds)} seeds, PM sweep {settings.pm_values}")
    for figure_id in wanted:
        start = time.time()
        fig = ALL_FIGURES[figure_id](settings)
        print()
        print_figure(fig)
        print(f"   [generated in {time.time() - start:.1f}s]")


if __name__ == "__main__":
    main()
