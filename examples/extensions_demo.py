#!/usr/bin/env python3
"""The paper's Section 4.4 extensions, exercised end to end.

Three defences beyond the core scheme:

1. **Attempt-number audit** — a cheater that under-reports its RTS
   attempt number (to shrink the receiver's reconstructed B_exp) is
   exposed by intentional RTS drops: if the retry does not increment
   the attempt number, that is immediate proof of misbehavior.
2. **Receiver audit via g** — in ad hoc networks the *receiver* may
   cheat by assigning tiny backoffs to a favoured sender.  When
   assignments derive from the well-known deterministic function g,
   the sender can recompute the honest value and detect
   under-assignment.
3. **Adaptive THRESH** — the paper defers adaptive parameter selection
   to future work; the implementation tracks honest-difference noise
   and re-derives THRESH, cutting TWO-FLOW misdiagnosis.
4. **Address spoofing + authentication** — a cheater that rotates MAC
   addresses dilutes its per-sender history; a higher-layer identity
   resolver collapses the aliases and restores detection.
5. **Collusion + third-party observer** — a receiver covering for its
   sender is exposed by a passive observer that re-runs equation 1
   from its own vantage point.

Run:
    python examples/extensions_demo.py
"""

from __future__ import annotations

import random

from repro.core import (
    AttemptLyingPolicy,
    ProtocolConfig,
    ReceiverAuditor,
    g_assignment,
)
from repro.experiments import ScenarioConfig, run_scenario
from repro.mac.correct import CorrectMac
from repro.metrics.collector import MetricsCollector
from repro.net import circle_topology
from repro.net.node import build_node
from repro.net.traffic import BackloggedSource
from repro.phy.constants import PhyTimings
from repro.phy.medium import Medium
from repro.phy.propagation import ShadowingModel
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


def demo_attempt_audit() -> None:
    print("=" * 70)
    print("1. Attempt-number audit (intentional RTS drops)")
    print("=" * 70)
    sim = Simulator()
    registry = RngRegistry(11)
    medium = Medium(sim, ShadowingModel(sigma_db=0.0),
                    rng=registry.stream("shadowing"), timings=PhyTimings())
    collector = MetricsCollector(misbehaving={1})
    receiver = CorrectMac(sim, medium, 0, registry, collector,
                          enable_attempt_audit=True)
    receiver.attempt_auditor.drop_probability = 0.1
    receiver.attempt_auditor.suspicion_threshold = 5
    liar = CorrectMac(sim, medium, 1, registry, collector,
                      policy=AttemptLyingPolicy(50.0))
    build_node(medium, receiver, (0.0, 0.0))
    node = build_node(medium, liar, (150.0, 0.0),
                      BackloggedSource(0, 512))
    node.start()
    sim.run(until=3_000_000)
    auditor = receiver.attempt_auditor
    print(f"  RTS probes issued:   {auditor.drops_issued}")
    print(f"  audits completed:    {auditor.audits_completed}")
    print(f"  proof of misbehavior: "
          f"{'YES — sender 1 banned' if auditor.is_proven(1) else 'no'}")
    print(f"  (liar reported attempt=1 on every RTS; after a deliberate "
          f"drop its retry failed to show attempt+1)")
    print()


def demo_receiver_audit() -> None:
    print("=" * 70)
    print("2. Receiver honesty audit via the deterministic function g")
    print("=" * 70)
    # A cheating receiver hands out tiny backoffs to pull data faster.
    rng = random.Random(3)
    auditor = ReceiverAuditor(receiver_id=9, sender_id=4)
    caught = 0
    for seq in range(12):
        honest = g_assignment(9, 4, seq)
        cheaty = min(honest, rng.randint(0, 3))  # under-assign
        verdict = auditor.check_assignment(cheaty, counter=seq)
        mark = "VIOLATION" if verdict.receiver_misbehaving else "ok"
        caught += verdict.receiver_misbehaving
        print(f"  pkt {seq:2d}: assigned={cheaty:2d} honest-g={honest:2d} "
              f"-> {mark:9s} (sender waits {verdict.corrected_backoff})")
    print(f"  {caught}/12 under-assignments detected; the sender simply "
          f"waits the honest g value instead.")
    print()


def demo_adaptive_thresh() -> None:
    print("=" * 70)
    print("3. Adaptive THRESH under TWO-FLOW channel noise")
    print("=" * 70)
    for label, adaptive in (("fixed THRESH=20", False), ("adaptive", True)):
        topo = circle_topology(8, with_interferers=True)
        result = run_scenario(ScenarioConfig(
            topology=topo, protocol="correct", duration_us=3_000_000,
            seed=5, adaptive_thresh=adaptive,
            protocol_config=ProtocolConfig(),
        ))
        print(f"  {label:16s}: misdiagnosis of honest senders = "
              f"{result.misdiagnosis_percent:5.1f}%")
    print("  The estimator tracks the noise of honest B_exp - B_act")
    print("  differences and raises THRESH just enough to absorb it.")
    print()


def demo_spoofing() -> None:
    print("=" * 70)
    print("4. Address spoofing vs higher-layer authentication")
    print("=" * 70)
    from repro.core import PartialCountdownPolicy
    from repro.mac.spoofing import AuthenticatingReceiverMac, SpoofingSenderMac

    aliases = (201, 202, 203, 204, 205, 206)
    for label, resolver in (
        ("no authentication", None),
        ("with authentication",
         lambda addr: 3 if addr in aliases else addr),
    ):
        sim = Simulator()
        registry = RngRegistry(21)
        medium = Medium(sim, ShadowingModel(sigma_db=0.0),
                        rng=registry.stream("shadowing"), timings=PhyTimings())
        collector = MetricsCollector(misbehaving={3})
        receiver = AuthenticatingReceiverMac(
            sim, medium, 0, registry, collector, identity_resolver=resolver,
        )
        honest = CorrectMac(sim, medium, 1, registry, collector)
        spoofer = SpoofingSenderMac(
            sim, medium, 3, registry, collector, aliases=aliases,
            policy=PartialCountdownPolicy(80.0),
        )
        build_node(medium, receiver, (0.0, 0.0))
        build_node(medium, honest, (150.0, 0.0),
                   BackloggedSource(0, 512)).start()
        build_node(medium, spoofer, (-150.0, 0.0),
                   BackloggedSource(0, 512)).start()
        sim.run(until=2_000_000)
        cheat = sum(collector.throughput_bps(a, 2_000_000)
                    for a in aliases + (3,))
        honest_tp = collector.throughput_bps(1, 2_000_000)
        flagged = [s for s, m in receiver._monitors.items()
                   if m.is_misbehaving]
        print(f"  {label:20s}: cheater={cheat / 1000:6.1f}k vs "
              f"honest={honest_tp / 1000:6.1f}k; diagnosed ids: "
              f"{flagged or 'none'}")
    print("  The resolver folds all six aliases into principal 3: one")
    print("  deep monitor accumulates the history the aliases diluted.")
    print()


def demo_collusion_observer() -> None:
    print("=" * 70)
    print("5. Collusion exposed by a passive third-party observer")
    print("=" * 70)
    from repro.core import PartialCountdownPolicy
    from repro.mac.observer import ObserverMac

    colluding = ProtocolConfig(alpha=0.01)  # receiver never penalises
    sim = Simulator()
    registry = RngRegistry(31)
    medium = Medium(sim, ShadowingModel(sigma_db=0.0),
                    rng=registry.stream("shadowing"), timings=PhyTimings())
    collector = MetricsCollector(misbehaving={1})
    receiver = CorrectMac(sim, medium, 0, registry, collector,
                          config=colluding)
    cheater = CorrectMac(sim, medium, 1, registry, collector,
                         policy=PartialCountdownPolicy(80.0))
    bystander = CorrectMac(sim, medium, 2, registry, collector)
    observer = ObserverMac(sim, medium, 9, registry, collector,
                           watch=((1, 0), (2, 0)))
    build_node(medium, receiver, (0.0, 0.0))
    build_node(medium, cheater, (150.0, 0.0),
               BackloggedSource(0, 512)).start()
    build_node(medium, bystander, (-150.0, 0.0),
               BackloggedSource(0, 512)).start()
    build_node(medium, observer, (30.0, 30.0))
    sim.run(until=3_000_000)
    for (s, r), entry in sorted(observer.report().items()):
        print(f"  pair sender={s} receiver={r}: packets={entry['packets']}, "
              f"deviations={entry['deviations']}, "
              f"unpenalised={entry['unpenalised_deviations']}, "
              f"colluding={'YES' if entry['colluding'] else 'no'}")
    print("  The receiver itself reports nothing (alpha rigged to 0.01);")
    print("  the observer independently sees every deviation and notices")
    print("  that the assignments never carry a penalty.")
    print()


def main() -> None:
    demo_attempt_audit()
    demo_receiver_audit()
    demo_adaptive_thresh()
    demo_spoofing()
    demo_collusion_observer()


if __name__ == "__main__":
    main()
