#!/usr/bin/env python3
"""Quickstart: catch a backoff cheater in a simulated 802.11 cell.

Builds the paper's core scenario — eight saturated senders around one
receiver, with sender 3 counting down only 40% of each assigned
backoff (PM = 60) — runs it once under the modified (CORRECT)
protocol, and prints what the receiver concluded.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro.experiments import ScenarioConfig, run_scenario
from repro.net import circle_topology

SIM_SECONDS = 5
CHEATER = 3
PM = 60.0  # counts down only 40% of every assigned backoff


def main() -> None:
    topology = circle_topology(
        n_senders=8, misbehaving=(CHEATER,), pm_percent=PM
    )
    config = ScenarioConfig(
        topology=topology,
        protocol="correct",
        duration_us=SIM_SECONDS * 1_000_000,
        seed=1,
    )
    print(f"Simulating {SIM_SECONDS}s: 8 saturated senders, "
          f"sender {CHEATER} misbehaving at PM={PM:.0f}% ...")
    result = run_scenario(config)

    print()
    print("Per-sender throughput (Kbps):")
    for sender, bps in sorted(result.throughputs().items()):
        tag = "  <-- misbehaving" if sender == CHEATER else ""
        print(f"  sender {sender}: {bps / 1000:8.1f}{tag}")

    print()
    print(f"Honest average (AVG):        {result.avg_throughput_bps/1000:8.1f} Kbps")
    print(f"Misbehaving sender (MSB):    {result.msb_throughput_bps/1000:8.1f} Kbps")
    print(f"Jain fairness index:         {result.fairness_index:8.3f}")
    print(f"Correct diagnosis:           {result.correct_diagnosis_percent:7.1f} %"
          f"  (packets from the cheater flagged by W/THRESH)")
    print(f"Misdiagnosis:                {result.misdiagnosis_percent:7.1f} %"
          f"  (honest packets wrongly flagged)")

    stats = result.collector.flows[CHEATER]
    print()
    print(f"The receiver observed {stats.deviations} equation-1 deviations "
          f"from sender {CHEATER} over {stats.delivered_packets} packets and "
          f"assigned {stats.penalty_slots} total penalty slots.")
    print("Despite cheating on every backoff, the correction scheme holds "
          "the cheater at (or below) its fair share — under plain 802.11 "
          "it would be taking a multiple of it.")


if __name__ == "__main__":
    main()
