"""Setup shim: the offline environment lacks the `wheel` package, so
PEP 517 editable installs fail; `python setup.py develop` / `pip install
-e . --no-build-isolation` use this legacy path instead.  All metadata
lives in pyproject.toml."""

from setuptools import setup

setup()
